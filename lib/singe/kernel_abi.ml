type kernel =
  | Viscosity
  | Conductivity
  | Diffusion
  | Chemistry
  | Stencil of Stencil_pipe.id

let kernel_name = function
  | Viscosity -> "viscosity"
  | Conductivity -> "conductivity"
  | Diffusion -> "diffusion"
  | Chemistry -> "chemistry"
  | Stencil id -> Stencil_pipe.id_name id

let all_kernels =
  [ Viscosity; Conductivity; Diffusion; Chemistry ]
  @ List.map (fun id -> Stencil id) Stencil_pipe.all_ids

let kernel_of_string s =
  match String.lowercase_ascii s with
  | "viscosity" -> Some Viscosity
  | "conductivity" -> Some Conductivity
  | "diffusion" -> Some Diffusion
  | "chemistry" -> Some Chemistry
  | other -> Option.map (fun id -> Stencil id) (Stencil_pipe.id_of_string other)

let is_stencil = function
  | Stencil _ -> true
  | Viscosity | Conductivity | Diffusion | Chemistry -> false

let out_fields mech = function
  | Viscosity | Conductivity -> 1
  | Diffusion | Chemistry -> Array.length (Chem.Mechanism.computed_species mech)
  | Stencil id -> (Stencil_pipe.get id).Stencil_pipe.width

let groups mech kernel =
  match kernel with
  | Stencil id ->
      (* Stencil kernels live in an image-shaped address space: one field
         per column, each grid point an independent scanline. The
         chemistry groups are absent on purpose — a pass that assumes
         their presence is exactly the kind of bug this workload exists
         to flush out. *)
      let w = (Stencil_pipe.get id).Stencil_pipe.width in
      [|
        { Gpusim.Isa.group_name = "image"; fields = w };
        { Gpusim.Isa.group_name = "out"; fields = w };
      |]
  | Viscosity | Conductivity | Diffusion | Chemistry ->
      let n = Array.length (Chem.Mechanism.computed_species mech) in
      [|
        { Gpusim.Isa.group_name = "temperature"; fields = 1 };
        { Gpusim.Isa.group_name = "pressure"; fields = 1 };
        { Gpusim.Isa.group_name = "mole_frac"; fields = n };
        { Gpusim.Isa.group_name = "diffusion_in"; fields = n };
        { Gpusim.Isa.group_name = "out"; fields = out_fields mech kernel };
      |]

let group_id program name = Gpusim.Memstate.group_index program name

(* The source image of a stencil scanline, derived deterministically from
   the point's grid temperature. Shared by [fill_inputs] and
   [reference_outputs] so oracle comparisons start bit-identical. *)
let stencil_source grid ~points ~width =
  Array.init points (fun p ->
      let temp = Chem.Grid.point_temperature grid p in
      Array.init width (fun col -> Stencil_pipe.source_value ~temp ~col))

let fill_inputs mech (grid : Chem.Grid.t) kernel program mem n =
  assert (grid.Chem.Grid.points >= n);
  let take arr = Array.sub arr 0 n in
  let set name field data =
    Gpusim.Memstate.set_field mem ~group:(group_id program name) ~field data
  in
  match kernel with
  | Stencil id ->
      let w = (Stencil_pipe.get id).Stencil_pipe.width in
      let rows = stencil_source grid ~points:n ~width:w in
      for col = 0 to w - 1 do
        set "image" col (Array.init n (fun p -> rows.(p).(col)))
      done
  | Viscosity | Conductivity | Diffusion | Chemistry ->
      set "temperature" 0 (take grid.Chem.Grid.temperature);
      set "pressure" 0 (take grid.Chem.Grid.pressure);
      let computed = Chem.Mechanism.computed_species mech in
      Array.iteri
        (fun pos sp ->
          set "mole_frac" pos (take grid.Chem.Grid.mole_frac.(sp));
          set "diffusion_in" pos (take grid.Chem.Grid.diffusion_in.(sp)))
        computed

let read_outputs program mem =
  let g = group_id program "out" in
  let fields =
    (Array.to_list program.Gpusim.Isa.groups
    |> List.find (fun (gi : Gpusim.Isa.group_info) -> gi.Gpusim.Isa.group_name = "out"))
      .Gpusim.Isa.fields
  in
  Array.init fields (fun f -> Gpusim.Memstate.get_field mem ~group:g ~field:f)

let reference_outputs mech grid kernel ~points =
  let computed = Chem.Mechanism.computed_species mech in
  let n = Array.length computed in
  match kernel with
  | Viscosity ->
      let out = Array.make points 0.0 in
      for p = 0 to points - 1 do
        out.(p) <-
          Chem.Ref_kernels.viscosity_point mech
            ~temp:(Chem.Grid.point_temperature grid p)
            ~mole_frac:(Chem.Grid.point_mole_fracs grid mech p)
      done;
      [| out |]
  | Conductivity ->
      let out = Array.make points 0.0 in
      for p = 0 to points - 1 do
        out.(p) <-
          Chem.Ref_kernels.conductivity_point mech
            ~temp:(Chem.Grid.point_temperature grid p)
            ~mole_frac:(Chem.Grid.point_mole_fracs grid mech p)
      done;
      [| out |]
  | Diffusion ->
      let out = Array.init n (fun _ -> Array.make points 0.0) in
      for p = 0 to points - 1 do
        let d =
          Chem.Ref_kernels.diffusion_point mech
            ~temp:(Chem.Grid.point_temperature grid p)
            ~pressure:(Chem.Grid.point_pressure grid p)
            ~mole_frac:(Chem.Grid.point_mole_fracs grid mech p)
        in
        Array.iteri (fun i v -> out.(i).(p) <- v) d
      done;
      out
  | Chemistry ->
      let out = Array.init n (fun _ -> Array.make points 0.0) in
      for p = 0 to points - 1 do
        let r =
          Chem.Ref_kernels.chemistry_point mech
            ~temp:(Chem.Grid.point_temperature grid p)
            ~pressure:(Chem.Grid.point_pressure grid p)
            ~mole_frac:(Chem.Grid.point_mole_fracs grid mech p)
            ~diffusion:(Chem.Grid.point_diffusion grid p)
        in
        Array.iteri (fun i v -> out.(i).(p) <- v) r.Chem.Ref_kernels.wdot
      done;
      out
  | Stencil id ->
      let pipe = Stencil_pipe.get id in
      let w = pipe.Stencil_pipe.width in
      let rows = stencil_source grid ~points ~width:w in
      let out = Array.init w (fun _ -> Array.make points 0.0) in
      for p = 0 to points - 1 do
        let res = Stencil_pipe.reference pipe ~source:rows.(p) in
        Array.iteri (fun col v -> out.(col).(p) <- v) res
      done;
      out
