(** Stencil-pipeline partitioner: lowers {!Stencil_pipe} descriptions to
    the DFG IR with warps specialized by stage (warp-overlapped tiling,
    arXiv 1909.07190).

    Warps split into contiguous bands, one per stage; loads ride with the
    first band. With [overlap:false] every (stage, column) value is
    computed once and halo taps read it cross-warp through shared memory;
    with [overlap:true] upstream warps compute halo-extended tiles
    (redundant recompute at the seams) so each downstream warp reads from
    exactly one upstream warp and cross-warp traffic collapses to
    band-to-band tile handoffs over named barriers. No fences are emitted
    in either mode. *)

val band : n_warps:int -> n_stages:int -> int -> int * int
(** [band ~n_warps ~n_stages s] is stage [s]'s (1-based) warp band,
    half-open. Total for any [n_warps >= 1]; degenerate counts collapse
    bands onto the last warp. *)

val block : w:int -> k:int -> int -> int * int
(** Block partition of [w] columns over [k] warps, half-open. *)

val owner_warp :
  n_warps:int -> n_stages:int -> width:int -> stage:int -> col:int -> int
(** The warp owning [col]'s output in [stage] (1-based). *)

val build : Stencil_pipe.t -> n_warps:int -> overlap:bool -> Dfg.t
(** Raises {!Diagnostics.Fail} (pass ["dfg-build"]) on degenerate warp
    counts or internal tile-planning inconsistencies. *)
