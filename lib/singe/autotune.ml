type candidate = {
  options : Compile.options;
  throughput : float;
  compiled : Compile.t;
  result : Compile.run_result;
}

type failure = {
  failed_options : Compile.options;
  reason : string;
  fault : Gpusim.Sm.fault_kind option;
}

type outcome = {
  best : candidate;
  tried : int;
  skipped : int;
  failures : failure list;
}

let default_warp_candidates mech kernel version =
  match version with
  | Compile.Baseline -> [ 4; 8; 16 ]
  | Compile.Warp_specialized | Compile.Naive_warp_specialized -> (
      let n = Array.length (Chem.Mechanism.computed_species mech) in
      let divisors =
        List.filter (fun w -> n mod w = 0) (List.init 17 (fun i -> i + 2))
      in
      let extras = [ 4; 8; 16 ] in
      let all = List.sort_uniq compare (divisors @ extras) in
      let all = List.filter (fun w -> w >= 2 && w <= 20) all in
      match kernel with
      | Kernel_abi.Chemistry ->
          (* Chemistry gains both from many warps (rates stay resident) and
             from few warps with several resident CTAs (its long dependence
             chains hide behind cross-CTA parallelism), so search both ends. *)
          List.sort_uniq compare (all @ [ 20 ])
      | Kernel_abi.Viscosity | Kernel_abi.Conductivity | Kernel_abi.Diffusion
        -> all)

let candidate_options ~points kernel version arch warp_candidates
    cta_targets =
  List.concat_map
    (fun n_warps ->
      List.concat_map
        (fun ctas_per_sm_target ->
          (* The baseline launches one thread per point: its CTA size must
             divide the problem. *)
          if version = Compile.Baseline && points mod (n_warps * 32) <> 0
          then []
          else
            (* Chemistry also searches its communication policy (staged vs
               mixed); pure recomputation never won end-to-end. *)
            let comm_candidates =
              if kernel = Kernel_abi.Chemistry && version <> Compile.Baseline
              then [ Some Compile.Chem_staged; Some Compile.Chem_mixed ]
              else [ None ]
            in
            List.map
              (fun chem_comm ->
                {
                  (Compile.default_options arch) with
                  Compile.n_warps;
                  ctas_per_sm_target;
                  chem_comm;
                  max_barriers =
                    (if kernel = Kernel_abi.Chemistry then
                       16 / ctas_per_sm_target
                     else 8);
                })
              comm_candidates)
        cta_targets)
    warp_candidates

(* Render a captured per-candidate failure; simulation faults keep their
   structured kind so sweep drivers can count containment events. *)
let classify_exn = function
  | Gpusim.Sm.Simulation_fault r ->
      ( Printf.sprintf "simulation fault: %s at cycle %d — %s"
          (Gpusim.Sm.fault_kind_name r.Gpusim.Sm.fault_kind)
          r.Gpusim.Sm.fault_cycle r.Gpusim.Sm.detail,
        Some r.Gpusim.Sm.fault_kind )
  | Diagnostics.Fail d -> (Diagnostics.to_string d, None)
  | Failure msg -> (msg, None)
  | Invalid_argument msg -> ("invalid argument: " ^ msg, None)
  | e -> (Printexc.to_string e, None)

let tune ?(points = 32768) ?warp_candidates ?(cta_targets = [ 1; 2 ]) ?jobs
    ?(max_cycles = 200_000_000) ?inject mech kernel version arch =
  let warp_candidates =
    match warp_candidates with
    | Some l -> l
    | None -> default_warp_candidates mech kernel version
  in
  (* Candidate evaluations are independent compile+simulate jobs: fan
     them out with per-item failure capture, then fold the returned list
     in input order so [tried], [skipped], [failures] and the winner
     (first strictly-better throughput) are exactly what the serial
     sweep produced, no matter which worker evaluated what. A faulty
     candidate — one that fails to compile or fit, deadlocks, exhausts
     the [max_cycles] watchdog budget, or computes wrong results — is
     recorded and skipped; the sweep completes on the survivors. *)
  let candidates =
    candidate_options ~points kernel version arch warp_candidates cta_targets
  in
  let eval (idx, options) =
    let faults = match inject with None -> [] | Some f -> f idx in
    let compiled = Compile.compile_cached mech kernel version options in
    let result =
      Compile.run compiled ~total_points:points ~faults ~max_cycles
    in
    if result.Compile.max_rel_err > 1e-6 then
      failwith
        (Printf.sprintf
           "autotune: config warps=%d ctas=%d produced wrong results (rel \
            err %.2g)"
           options.Compile.n_warps options.Compile.ctas_per_sm_target
           result.Compile.max_rel_err);
    let throughput = result.Compile.machine.Gpusim.Machine.points_per_sec in
    { options; throughput; compiled; result }
  in
  let evaluated =
    Sutil.Domain_pool.parallel_map_result ?jobs eval
      (List.mapi (fun i o -> (i, o)) candidates)
  in
  let tried = List.length candidates in
  let skipped, failures, best =
    List.fold_left2
      (fun (skipped, failures, best) options outcome ->
        match outcome with
        | Error e ->
            let reason, fault = classify_exn e in
            ( skipped + 1,
              { failed_options = options; reason; fault } :: failures,
              best )
        | Ok cand -> (
            match best with
            | Some b when b.throughput >= cand.throughput ->
                (skipped, failures, best)
            | Some _ | None -> (skipped, failures, Some cand)))
      (0, [], None) candidates evaluated
  in
  let failures = List.rev failures in
  match best with
  | Some best -> { best; tried; skipped; failures }
  | None ->
      failwith
        (Printf.sprintf
           "autotune: no %s configuration of %s fits on %s (%d candidate(s) \
            failed%s)"
           (Kernel_abi.kernel_name kernel)
           mech.Chem.Mechanism.name arch.Gpusim.Arch.name skipped
           (match failures with
           | [] -> ""
           | { reason; _ } :: _ -> "; first: " ^ reason))
