type mode = Exhaustive | Pruned of int

type candidate = {
  options : Compile.options;
  throughput : float;
  compiled : Compile.t;
  result : Compile.run_result;
  predicted : Perf_model.prediction;
}

type failure = {
  failed_options : Compile.options;
  reason : string;
  fault : Gpusim.Sm.fault_kind option;
}

type outcome = {
  best : candidate;
  tried : int;
  skipped : int;
  failures : failure list;
  mode : mode;
  candidates_pruned : int;
  model_rank_of_winner : int;
}

let default_prune_keep = 8

let default_warp_candidates mech kernel version =
  match version with
  | Compile.Baseline -> [ 4; 8; 16 ]
  | Compile.Warp_specialized | Compile.Naive_warp_specialized -> (
      let n = Array.length (Chem.Mechanism.computed_species mech) in
      let divisors =
        List.filter (fun w -> n mod w = 0) (List.init 17 (fun i -> i + 2))
      in
      let extras = [ 4; 8; 16 ] in
      let all = List.sort_uniq compare (divisors @ extras) in
      let all = List.filter (fun w -> w >= 2 && w <= 20) all in
      match kernel with
      | Kernel_abi.Chemistry ->
          (* Chemistry gains both from many warps (rates stay resident) and
             from few warps with several resident CTAs (its long dependence
             chains hide behind cross-CTA parallelism), so search both ends. *)
          List.sort_uniq compare (all @ [ 20 ])
      | Kernel_abi.Viscosity | Kernel_abi.Conductivity | Kernel_abi.Diffusion
        -> all
      | Kernel_abi.Stencil _ ->
          (* Stencil stages do not depend on the mechanism's species count;
             the useful axis is the producer/consumer band split, which
             scales with powers of two. *)
          [ 2; 4; 8; 16 ])

let candidate_options ?synth_exchange ?stencil_overlap ~points kernel version
    arch warp_candidates cta_targets =
  List.concat_map
    (fun n_warps ->
      List.concat_map
        (fun ctas_per_sm_target ->
          (* The baseline launches one thread per point: its CTA size must
             divide the problem. *)
          if version = Compile.Baseline && points mod (n_warps * 32) <> 0
          then []
          else
            (* Chemistry also searches its communication policy (staged vs
               mixed); pure recomputation never won end-to-end. *)
            let comm_candidates =
              if kernel = Kernel_abi.Chemistry && version <> Compile.Baseline
              then [ Some Compile.Chem_staged; Some Compile.Chem_mixed ]
              else [ None ]
            in
            List.map
              (fun chem_comm ->
                let defaults = Compile.default_options arch in
                {
                  defaults with
                  Compile.n_warps;
                  ctas_per_sm_target;
                  chem_comm;
                  synth_exchange =
                    (match synth_exchange with
                    | Some b -> Some b
                    | None -> defaults.Compile.synth_exchange);
                  stencil_overlap =
                    (match stencil_overlap with
                    | Some b -> b
                    | None -> defaults.Compile.stencil_overlap);
                  max_barriers =
                    (if kernel = Kernel_abi.Chemistry then
                       16 / ctas_per_sm_target
                     else 8);
                })
              comm_candidates)
        cta_targets)
    warp_candidates

(* Render a captured per-candidate failure; simulation faults keep their
   structured kind so sweep drivers can count containment events. *)
let classify_exn = function
  | Gpusim.Sm.Simulation_fault r ->
      ( Printf.sprintf "simulation fault: %s at cycle %d — %s"
          (Gpusim.Sm.fault_kind_name r.Gpusim.Sm.fault_kind)
          r.Gpusim.Sm.fault_cycle r.Gpusim.Sm.detail,
        Some r.Gpusim.Sm.fault_kind )
  | Gpusim.Chip.Occupancy_rejected r ->
      ("occupancy rejected: " ^ Gpusim.Chip.reject_message r, None)
  | Diagnostics.Fail d -> (Diagnostics.to_string d, None)
  | Failure msg -> (msg, None)
  | Invalid_argument msg -> ("invalid argument: " ^ msg, None)
  | e -> (Printexc.to_string e, None)

let tune ?(points = 32768) ?warp_candidates ?(cta_targets = [ 1; 2 ]) ?jobs
    ?(max_cycles = 200_000_000) ?inject ?(mode = Exhaustive) ?n_sms ?skew
    ?synth_exchange ?stencil_overlap ?grid mech kernel version arch =
  let candidates =
    match grid with
    | Some g -> g
    | None ->
        let warp_candidates =
          match warp_candidates with
          | Some l -> l
          | None -> default_warp_candidates mech kernel version
        in
        candidate_options ?synth_exchange ?stencil_overlap ~points kernel
          version arch warp_candidates cta_targets
  in
  let indexed = List.mapi (fun i o -> (i, o)) candidates in
  (* Phase 1 — compile and score every candidate analytically. This runs
     in both modes (it is cheap: {!Compile.compile_cached} plus
     {!Perf_model.predict}, no simulation), so the outcome can always
     report where the model ranked the measured winner. A candidate that
     fails to compile or fit is a failure in either mode — the model
     never sees it. *)
  let score (_idx, options) =
    let compiled = Compile.compile_cached mech kernel version options in
    let predicted =
      Perf_model.predict ?n_sms ?skew compiled ~total_points:points
    in
    (compiled, predicted)
  in
  let scored = Sutil.Domain_pool.parallel_map_result ?jobs score indexed in
  let compile_failures = ref [] in
  let compiled_ok = ref [] in
  List.iter2
    (fun (idx, options) outcome ->
      match outcome with
      | Error e ->
          let reason, fault = classify_exn e in
          compile_failures :=
            (idx, { failed_options = options; reason; fault })
            :: !compile_failures
      | Ok (compiled, predicted) ->
          compiled_ok := (idx, options, compiled, predicted) :: !compiled_ok)
    indexed scored;
  (* Rank the compilable candidates by predicted throughput; ties break
     towards the lower candidate index so the order is total and
     deterministic. [rank_of] maps a candidate index to its 1-based model
     rank. *)
  let ranked =
    List.sort
      (fun (i1, _, _, (p1 : Perf_model.prediction)) (i2, _, _, p2) ->
        match
          compare p2.Perf_model.points_per_sec p1.Perf_model.points_per_sec
        with
        | 0 -> compare i1 i2
        | c -> c)
      !compiled_ok
  in
  let rank_of = Hashtbl.create 64 in
  List.iteri
    (fun r (idx, _, _, _) -> Hashtbl.replace rank_of idx (r + 1))
    ranked;
  let selected, candidates_pruned =
    match mode with
    | Exhaustive -> (ranked, 0)
    | Pruned keep ->
        let keep = max 1 keep in
        let sel = List.filteri (fun r _ -> r < keep) ranked in
        (sel, List.length ranked - List.length sel)
  in
  (* Simulate in candidate-index order: the fold below then reproduces the
     serial sweep's [skipped]/[failures] bookkeeping and winner exactly,
     no matter which worker evaluated what. *)
  let selected =
    List.sort (fun (i1, _, _, _) (i2, _, _, _) -> compare i1 i2) selected
  in
  (* Phase 2 — simulate the surviving candidates (all of them when
     exhaustive, the model's top picks when pruned) with per-item failure
     capture. A faulty candidate — one that deadlocks, exhausts the
     [max_cycles] watchdog budget, or computes wrong results — is
     recorded and skipped; the sweep completes on the survivors. *)
  let eval (idx, options, compiled, predicted) =
    let faults = match inject with None -> [] | Some f -> f idx in
    let result =
      Compile.run compiled ~total_points:points ~faults ~max_cycles ?n_sms
        ?skew
    in
    if result.Compile.max_rel_err > 1e-6 then
      failwith
        (Printf.sprintf
           "autotune: config warps=%d ctas=%d produced wrong results (rel \
            err %.2g)"
           options.Compile.n_warps options.Compile.ctas_per_sm_target
           result.Compile.max_rel_err);
    let throughput = result.Compile.machine.Gpusim.Machine.points_per_sec in
    { options; throughput; compiled; result; predicted }
  in
  let evaluated =
    Sutil.Domain_pool.parallel_map_result ?jobs eval selected
  in
  let tried = List.length candidates in
  let sim_failures, best =
    List.fold_left2
      (fun (failures, best) (idx, options, _, _) outcome ->
        match outcome with
        | Error e ->
            let reason, fault = classify_exn e in
            ( (idx, { failed_options = options; reason; fault }) :: failures,
              best )
        | Ok cand -> (
            match best with
            (* Winner tie-break is pinned: on equal throughput the earlier
               candidate index wins ([>=] keeps the incumbent and the fold
               visits candidates in index order), so the reported best
               cannot depend on [jobs] or worker scheduling. *)
            | Some (_, b) when b.throughput >= cand.throughput ->
                (failures, best)
            | Some _ | None -> (failures, Some (idx, cand))))
      ([], None) selected evaluated
  in
  let failures =
    List.sort
      (fun (i1, _) (i2, _) -> compare i1 i2)
      (!compile_failures @ sim_failures)
  in
  let skipped = List.length failures in
  let failures = List.map snd failures in
  match best with
  | Some (best_idx, best) ->
      let model_rank_of_winner =
        match Hashtbl.find_opt rank_of best_idx with
        | Some r -> r
        | None -> 0
      in
      {
        best;
        tried;
        skipped;
        failures;
        mode;
        candidates_pruned;
        model_rank_of_winner;
      }
  | None ->
      failwith
        (Printf.sprintf
           "autotune: no %s configuration of %s fits on %s (%d candidate(s) \
            failed%s)"
           (Kernel_abi.kernel_name kernel)
           mech.Chem.Mechanism.name arch.Gpusim.Arch.name skipped
           (match failures with
           | [] -> ""
           | { reason; _ } :: _ -> "; first: " ^ reason))
