type stat = string * float

type kind = Transform | Validate

type record = {
  pass_name : string;
  kind : kind;
  runs : int;
  wall_ns : float;
  stats : stat list;
  ok : bool;
}

type report = {
  pipeline : string;
  records : record list;
  total_ns : float;
  warnings : Diagnostics.t list;
}

type t = {
  pipeline : string;
  started_ns : float;
  mutable records_rev : record list;  (* most recent first *)
  mutable warnings_rev : Diagnostics.t list;
}

let now_ns () = Unix.gettimeofday () *. 1e9

let create pipeline =
  { pipeline; started_ns = now_ns (); records_rev = []; warnings_rev = [] }

(* Merge a finished execution into the existing record of the same name, if
   any: the fitting loops rerun schedule/lower several times and should
   show up as one line with a run count, not one line per retry. *)
let record t ~name ~kind ~wall_ns ~stats ~ok =
  let rec merge acc = function
    | [] ->
        let r = { pass_name = name; kind; runs = 1; wall_ns; stats; ok } in
        r :: List.rev acc
    | r :: rest when r.pass_name = name ->
        let r =
          { r with runs = r.runs + 1; wall_ns = r.wall_ns +. wall_ns; stats;
            ok = r.ok && ok }
        in
        List.rev_append acc (r :: rest)
    | r :: rest -> merge (r :: acc) rest
  in
  t.records_rev <- merge [] t.records_rev

let run t ~name ?(stats = fun _ -> []) f =
  let t0 = now_ns () in
  match f () with
  | v ->
      record t ~name ~kind:Transform ~wall_ns:(now_ns () -. t0)
        ~stats:(stats v) ~ok:true;
      v
  | exception e ->
      record t ~name ~kind:Transform ~wall_ns:(now_ns () -. t0) ~stats:[]
        ~ok:true;
      raise e

let validate t ~name f =
  let t0 = now_ns () in
  let result = f () in
  let wall_ns = now_ns () -. t0 in
  match result with
  | Ok () -> record t ~name ~kind:Validate ~wall_ns ~stats:[] ~ok:true
  | Error problems ->
      record t ~name ~kind:Validate ~wall_ns ~stats:[] ~ok:false;
      let n = List.length problems in
      let shown = List.filteri (fun i _ -> i < 4) problems in
      let suffix = if n > 4 then Printf.sprintf " (and %d more)" (n - 4) else "" in
      Diagnostics.failf ~pass:name "%s%s" (String.concat "; " shown) suffix

let warn t ?pass message =
  t.warnings_rev <- Diagnostics.warning ?pass message :: t.warnings_rev

let report t =
  {
    pipeline = t.pipeline;
    records = List.rev t.records_rev;
    total_ns = now_ns () -. t.started_ns;
    warnings = List.rev t.warnings_rev;
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf "pipeline %s: %.2f ms total@," r.pipeline
    (r.total_ns /. 1e6);
  List.iter
    (fun rec_ ->
      let kind = match rec_.kind with Transform -> "pass" | Validate -> "check" in
      Format.fprintf ppf "  %-5s %-18s %8.3f ms" kind rec_.pass_name
        (rec_.wall_ns /. 1e6);
      if rec_.runs > 1 then Format.fprintf ppf "  (%d runs)" rec_.runs;
      if not rec_.ok then Format.fprintf ppf "  FAILED";
      (match rec_.stats with
      | [] -> ()
      | stats ->
          Format.fprintf ppf "  [%s]"
            (String.concat ", "
               (List.map
                  (fun (k, v) ->
                    if Float.is_integer v && Float.abs v < 1e15 then
                      Printf.sprintf "%s=%.0f" k v
                    else Printf.sprintf "%s=%g" k v)
                  stats)));
      Format.pp_print_cut ppf ())
    r.records;
  List.iter
    (fun w -> Format.fprintf ppf "  %a@," Diagnostics.pp w)
    r.warnings

(* Hand-rolled JSON: the values are controlled identifiers and numbers, so
   escaping only needs the JSON string specials. *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let report_to_json (r : report) =
  let pass_json rec_ =
    Printf.sprintf
      "{\"name\": %s, \"kind\": %s, \"runs\": %d, \"wall_ms\": %s, \"ok\": \
       %b, \"stats\": {%s}}"
      (json_string rec_.pass_name)
      (json_string
         (match rec_.kind with Transform -> "transform" | Validate -> "validate"))
      rec_.runs
      (json_float (rec_.wall_ns /. 1e6))
      rec_.ok
      (String.concat ", "
         (List.map
            (fun (k, v) -> Printf.sprintf "%s: %s" (json_string k) (json_float v))
            rec_.stats))
  in
  Printf.sprintf
    "{\"pipeline\": %s, \"total_ms\": %s, \"passes\": [%s], \"warnings\": \
     [%s]}"
    (json_string r.pipeline)
    (json_float (r.total_ns /. 1e6))
    (String.concat ", " (List.map pass_json r.records))
    (String.concat ", "
       (List.map (fun w -> json_string (Diagnostics.to_string w)) r.warnings))
