(** Reproduction harness: one entry point per table and figure of the
    paper (see DESIGN.md's experiment index). Each prints the same rows or
    series the paper reports, on stdout.

    Simulated numbers are deterministic, so the paper's twenty-iteration
    harmonic mean collapses to a single run. Absolute magnitudes depend on
    the simulator calibration (see {!Gpusim.Arch}); the comparisons the
    paper argues from — who wins, by what factor, where crossovers fall —
    are the reproduction target (EXPERIMENTS.md records both sides). *)

val fast : unit -> bool
(** True when the [SINGE_FAST] environment variable is set: smaller sweeps
    for CI-style runs. *)

val fig3 : unit -> unit
(** Mechanism characteristics table (reactions / species / QSSA / stiff). *)

val fig9 : unit -> unit
(** Naive vs overlaid warp-specialized code generation: DME viscosity on
    Kepler over a range of warps per CTA (the instruction-cache cliff). *)

val fig10 : unit -> unit
(** Constant registers per thread on Kepler, per mechanism and kernel. *)

val perf_figure :
  Chem.Mechanism.t -> Singe.Kernel_abi.kernel -> unit
(** Figures 11-16: throughput of the autotuned baseline and
    warp-specialized kernels on both architectures at 32^3 / 64^3 / 128^3,
    with the sustained GFLOPS (§6.1/6.2) and spill bytes (§6.3) the paper
    quotes in the text. *)

val fig11 : unit -> unit
(** DME viscosity *)

val fig12 : unit -> unit
(** heptane viscosity *)

val fig13 : unit -> unit
(** DME diffusion *)

val fig14 : unit -> unit
(** heptane diffusion *)

val fig15 : unit -> unit
(** DME chemistry *)

val fig16 : unit -> unit
(** heptane chemistry *)

val stall_breakdown : unit -> unit
(** Fig.-11-style cycle-attribution table: the profiler's per-bucket
    shares (issue / arith / memory / barriers / caches / idle) for DME
    viscosity on Kepler, baseline vs warp-specialized. *)

val ablation_barriers : unit -> unit
(** §6.2: cost of named-barrier synchronization in the diffusion kernel —
    grouped sync points vs one barrier per edge, and the CTA-barrier
    epochs' share of runtime. *)

val ablation_exp_constants : unit -> unit
(** §6.1: the constant-cache-fed DFMA ceiling — viscosity with the
    exponential's polynomial constants read from the constant cache vs
    held in registers (the paper's deliberately-incorrect probe, here
    implemented losslessly). *)

val ablation_chem_comm : unit -> unit
(** Chemistry communication-policy ablation: species vectors staged through
    shared memory vs redundantly recomputed per consumer warp vs the mixed
    policy — throughput, shared footprint and spill bytes. *)

val ablation_weights : unit -> unit
(** Mapping-weight sweep: how the FLOP / register / locality weights of the
    greedy warp assignment trade balance for locality. *)

val ablation_batches : unit -> unit
(** §6.2: constant-load amortization — throughput versus grid size as the
    per-CTA constant-loading prologue is amortized over more streaming
    batches. *)

val ablation_exchange : unit -> unit
(** Shuffle-exchange superoptimizer ablation ({!Singe.Shuffle_synth}):
    per-kernel simulated cycles with the exchange rewrite off vs on, the
    rewrite counts (sites, round trips removed, shuffle steps) and the
    shared-memory footprint freed — DME warp-specialized on Kepler. *)

val model_accuracy : unit -> unit
(** Predicted-vs-simulated SM cycles for {!Singe.Perf_model} on every
    kernel x version (both mechanisms on Kepler), with the per-row
    relative error and the worst case — the accuracy table DESIGN §12
    quotes. *)

val chip_scaling : unit -> unit
(** Throughput vs SM count for DME viscosity on Kepler at a fixed grid:
    the {!Gpusim.Chip} dispatcher/arbiter's wave, tail and DRAM-contention
    behavior as the chip grows — speedup over one SM, aggregate DRAM
    utilization, peak arbiter throttle and dispatch imbalance per row. *)

val partition_search : unit -> unit
(** Automatic partition search vs the hand mapping ({!Singe.Partition_search},
    DESIGN §16): hand vs searched cycles, the search/gate/reject funnel and
    the winning spec for every warp-specialized kernel of both mechanisms on
    Kepler. Winners are confirmed by simulation (model-only under
    [SINGE_FAST]). *)

val stencil_overlap : unit -> unit
(** Warp-overlapped vs non-overlapped stencil tiling ({!Singe.Stencil_dfg},
    DESIGN §17): simulated SM cycles for every stencil pipeline on Kepler
    under both tiling modes, each with the hand band mapping and the
    searched partition ([--partition auto], model-resolved). *)

val all : unit -> unit
(** Every table, figure and ablation in order. *)
