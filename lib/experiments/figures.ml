let fast () = Sys.getenv_opt "SINGE_FAST" <> None

let archs () = [ Gpusim.Arch.fermi_c2070; Gpusim.Arch.kepler_k20c ]

let sizes () =
  if fast () then [ (32768, "32^3") ]
  else [ (32768, "32^3"); (262144, "64^3"); (2097152, "128^3") ]

let line () = print_endline (String.make 78 '-')

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

let fig3 () =
  header "Figure 3: chemical mechanisms";
  Printf.printf "%-10s %9s %8s %5s %6s\n" "Mechanism" "Reactions" "Species"
    "QSSA" "Stiff";
  List.iter
    (fun mech -> print_endline (Chem.Mechanism.summary mech))
    [ Chem.Mech_gen.dme (); Chem.Mech_gen.heptane () ];
  print_newline ()

(* Tuned-configuration cache: figures share autotuning work. Guarded by
   a mutex so figure code running inside a [Domain_pool.parallel_map]
   worker can consult it safely; the tune itself runs outside the lock
   (it fans out its own candidate evaluations). *)
let tuned : (string, Singe.Autotune.candidate) Hashtbl.t = Hashtbl.create 32
let tuned_mutex = Mutex.create ()

let tune mech kernel version arch =
  let key =
    Printf.sprintf "%s/%s/%s/%s" mech.Chem.Mechanism.name
      (Singe.Kernel_abi.kernel_name kernel)
      (match version with
      | Singe.Compile.Warp_specialized -> "ws"
      | Singe.Compile.Baseline -> "base"
      | Singe.Compile.Naive_warp_specialized -> "naive")
      arch.Gpusim.Arch.name
  in
  let cached =
    Mutex.lock tuned_mutex;
    let v = Hashtbl.find_opt tuned key in
    Mutex.unlock tuned_mutex;
    v
  in
  match cached with
  | Some c -> c
  | None ->
      let warp_candidates =
        if fast () then
          Some
            (match version with
            | Singe.Compile.Baseline -> [ 8 ]
            | _ -> [ 4; 8 ])
        else None
      in
      let outcome =
        Singe.Autotune.tune ?warp_candidates mech kernel version arch
      in
      Mutex.lock tuned_mutex;
      Hashtbl.replace tuned key outcome.Singe.Autotune.best;
      Mutex.unlock tuned_mutex;
      outcome.Singe.Autotune.best

let fig9 () =
  header
    "Figure 9: naive vs Singe (overlaid) warp-specialized code generation\n\
     DME viscosity on Kepler, 32^3 points; throughput in points/s";
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  Printf.printf "%-10s %14s %14s\n" "warps/CTA" "naive" "Singe";
  let warps = if fast () then [ 2; 4; 6; 8 ] else [ 2; 3; 4; 5; 6; 8; 10; 12; 15; 16 ] in
  (* One worker per warp count; each returns its fully formatted row and
     the rows print post-join, so the table is byte-identical to the
     serial sweep. *)
  let rows =
    Sutil.Domain_pool.parallel_map
      (fun n_warps ->
        let run version =
          let options =
            { (Singe.Compile.default_options arch) with Singe.Compile.n_warps }
          in
          match
            let c = Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity version options in
            (* 8 point batches per CTA: the loop re-executes the kernel body,
               so divergent instruction streams re-fetch every pass. *)
            Singe.Compile.run c ~total_points:32768 ~ctas:128
          with
          | r -> Printf.sprintf "%14.3g" r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
          | exception Failure _ -> Printf.sprintf "%14s" "(won't fit)"
        in
        Printf.sprintf "%-10d %s %s\n" n_warps
          (run Singe.Compile.Naive_warp_specialized)
          (run Singe.Compile.Warp_specialized))
      warps
  in
  List.iter print_string rows;
  print_newline ()

let fig10 () =
  header
    "Figure 10: constant registers per thread on Kepler\n\
     (representative configurations: 6/13 warps for viscosity and \
     diffusion, 16 for chemistry)";
  Printf.printf "%-10s %10s %10s %10s\n" "Mechanism" "Viscosity" "Diffusion"
    "Chemistry";
  let rows =
    Sutil.Domain_pool.parallel_map
      (fun (mech, vis_warps) ->
        let regs kernel n_warps =
          let options =
            { (Singe.Compile.default_options Gpusim.Arch.kepler_k20c) with
              Singe.Compile.n_warps;
              max_barriers = (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
              ctas_per_sm_target = (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2) }
          in
          let c = Singe.Compile.compile_cached mech kernel Singe.Compile.Warp_specialized options in
          c.Singe.Compile.lowered.Singe.Lower.n_bank_regs
        in
        Printf.sprintf "%-10s %10d %10d %10d\n" mech.Chem.Mechanism.name
          (regs Singe.Kernel_abi.Viscosity vis_warps)
          (regs Singe.Kernel_abi.Diffusion vis_warps)
          (regs Singe.Kernel_abi.Chemistry 16))
      [ (Chem.Mech_gen.dme (), 6); (Chem.Mech_gen.heptane (), 13) ]
  in
  List.iter print_string rows;
  print_newline ()

let perf_figure mech kernel =
  header
    (Printf.sprintf
       "%s %s: data-parallel CUDA baseline vs warp-specialized (throughput, points/s)"
       mech.Chem.Mechanism.name
       (Singe.Kernel_abi.kernel_name kernel));
  List.iter
    (fun arch ->
      let base = tune mech kernel Singe.Compile.Baseline arch in
      let ws = tune mech kernel Singe.Compile.Warp_specialized arch in
      Printf.printf
        "%s  (baseline: %d warps/CTA; warp-specialized: %d warps/CTA, %d CTAs/SM)\n"
        arch.Gpusim.Arch.name
        base.Singe.Autotune.options.Singe.Compile.n_warps
        ws.Singe.Autotune.options.Singe.Compile.n_warps
        ws.Singe.Autotune.result.Singe.Compile.machine.Gpusim.Machine.occ
          .Gpusim.Machine.resident_ctas;
      Printf.printf "  %-8s %14s %14s %9s %10s %10s\n" "size" "baseline"
        "warp-spec" "speedup" "base-GF" "ws-GF";
      (* Each size reruns the tuned programs on an already-compiled,
         immutable artifact: the rows are independent simulations and fan
         out; printing stays in size order after the join. *)
      let rows =
        Sutil.Domain_pool.parallel_map
          (fun (points, label) ->
            let rerun (c : Singe.Autotune.candidate) =
              Singe.Compile.run c.Singe.Autotune.compiled ~total_points:points
            in
            let rb = rerun base and rw = rerun ws in
            let tb = rb.Singe.Compile.machine.Gpusim.Machine.points_per_sec in
            let tw = rw.Singe.Compile.machine.Gpusim.Machine.points_per_sec in
            Printf.sprintf "  %-8s %14.4g %14.4g %8.2fx %10.1f %10.1f\n" label tb
              tw (tw /. tb)
              rb.Singe.Compile.machine.Gpusim.Machine.gflops
              rw.Singe.Compile.machine.Gpusim.Machine.gflops)
          (sizes ())
      in
      List.iter print_string rows;
      let spill (c : Singe.Autotune.candidate) =
        c.Singe.Autotune.compiled.Singe.Compile.lowered.Singe.Lower.spill_bytes_per_thread
      in
      Printf.printf
        "  spill bytes/thread: baseline %d, warp-specialized %d; baseline \
         local-memory traffic %.0f GB/s\n"
        (spill base) (spill ws)
        base.Singe.Autotune.result.Singe.Compile.machine.Gpusim.Machine.local_gbs)
    (archs ());
  print_newline ()

let fig11 () = perf_figure (Chem.Mech_gen.dme ()) Singe.Kernel_abi.Viscosity
let fig12 () = perf_figure (Chem.Mech_gen.heptane ()) Singe.Kernel_abi.Viscosity
let fig13 () = perf_figure (Chem.Mech_gen.dme ()) Singe.Kernel_abi.Diffusion
let fig14 () = perf_figure (Chem.Mech_gen.heptane ()) Singe.Kernel_abi.Diffusion
let fig15 () = perf_figure (Chem.Mech_gen.dme ()) Singe.Kernel_abi.Chemistry
let fig16 () = perf_figure (Chem.Mech_gen.heptane ()) Singe.Kernel_abi.Chemistry

let stall_breakdown () =
  header
    "Stall breakdown (Fig. 11 style): where DME viscosity warps spend \
     their cycles on Kepler";
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let points = if fast () then 13 * 3 * 32 else 32768 in
  (* Tune serially (the tuner fans out its own candidates), then run the
     two profiled simulations concurrently. *)
  let base = tune mech Singe.Kernel_abi.Viscosity Singe.Compile.Baseline arch in
  let ws =
    tune mech Singe.Kernel_abi.Viscosity Singe.Compile.Warp_specialized arch
  in
  Printf.printf "  %-10s" "";
  Array.iter
    (fun name -> Printf.printf " %11s" name)
    Gpusim.Profile.bucket_names;
  print_newline ();
  let rows =
    Sutil.Domain_pool.parallel_map
      (fun (label, (cand : Singe.Autotune.candidate)) ->
        (* The baseline maps one thread per point, so its point count
           must be a whole number of CTAs; round up to the tuned
           candidate's CTA footprint (shares are insensitive to the
           handful of extra points). *)
        let per_cta =
          32 * cand.Singe.Autotune.options.Singe.Compile.n_warps
        in
        let total_points = (points + per_cta - 1) / per_cta * per_cta in
        let r =
          Singe.Compile.run cand.Singe.Autotune.compiled ~total_points
            ~profile:{ Gpusim.Sm.timeline_capacity = 0 }
        in
        let prof =
          match
            r.Singe.Compile.machine.Gpusim.Machine.sim.Gpusim.Sm.profile
          with
          | Some p -> p
          | None -> assert false
        in
        let tot = Gpusim.Profile.bucket_totals prof in
        let denom =
          Float.max 1.0 (float_of_int (Gpusim.Profile.total_warp_cycles prof))
        in
        let b = Buffer.create 128 in
        Printf.bprintf b "  %-10s" label;
        Array.iter
          (fun v ->
            Printf.bprintf b " %10.1f%%" (100.0 *. float_of_int v /. denom))
          tot;
        Printf.bprintf b "   (%d cycles x %d warps%s)"
          prof.Gpusim.Profile.cycles
          (Gpusim.Profile.n_warps prof)
          (if Gpusim.Profile.conservation_ok prof then ""
           else ", NOT CONSERVED");
        Buffer.contents b)
      [ ("baseline", base); ("warp-spec", ws) ]
  in
  List.iter print_endline rows;
  print_newline ()

let ablation_barriers () =
  header
    "Ablation (§6.2): named-barrier synchronization cost in DME diffusion";
  let mech = Chem.Mech_gen.dme () in
  List.iter
    (fun arch ->
      (* Tune once (serial: the tuner fans out its own candidates), then
         run both sync policies concurrently. *)
      let best = tune mech Singe.Kernel_abi.Diffusion Singe.Compile.Warp_specialized arch in
      let run group_syncs =
        let options =
          { best.Singe.Autotune.options with Singe.Compile.group_syncs }
        in
        let c =
          Singe.Compile.compile_cached mech Singe.Kernel_abi.Diffusion
            Singe.Compile.Warp_specialized options
        in
        let r = Singe.Compile.run c ~total_points:32768 in
        (r, c)
      in
      let (grouped, cg), (ungrouped, cu) =
        match Sutil.Domain_pool.parallel_map run [ true; false ] with
        | [ g; u ] -> (g, u)
        | _ -> assert false
      in
      let stalls (r : Singe.Compile.run_result) =
        let s = r.Singe.Compile.machine.Gpusim.Machine.sim in
        s.Gpusim.Sm.counters.Gpusim.Sm.barrier_stalls
        + s.Gpusim.Sm.counters.Gpusim.Sm.cta_barrier_stalls
      in
      Printf.printf
        "%s: grouped syncs %.1f GFLOPS (%d sync points, %d warp-cycles \
         stalled); ungrouped %.1f GFLOPS (%d sync points, %d stalled)\n%!"
        arch.Gpusim.Arch.name
        grouped.Singe.Compile.machine.Gpusim.Machine.gflops
        cg.Singe.Compile.schedule.Singe.Schedule.n_sync_points
        (stalls grouped)
        ungrouped.Singe.Compile.machine.Gpusim.Machine.gflops
        cu.Singe.Compile.schedule.Singe.Schedule.n_sync_points
        (stalls ungrouped))
    (archs ());
  print_newline ()

let ablation_exp_constants () =
  header
    "Ablation (§6.1): Kepler DFMA throughput with constant-cache-fed vs \
     register-fed exponentials (DME viscosity)";
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let best = tune mech Singe.Kernel_abi.Viscosity Singe.Compile.Warp_specialized arch in
  let rows =
    Sutil.Domain_pool.parallel_map
      (fun (flag, label) ->
        let options =
          { best.Singe.Autotune.options with Singe.Compile.exp_consts_in_registers = flag }
        in
        let c =
          Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity
            Singe.Compile.Warp_specialized options
        in
        let r = Singe.Compile.run c ~total_points:32768 in
        Printf.sprintf "  %-22s %8.1f GFLOPS\n" label
          r.Singe.Compile.machine.Gpusim.Machine.gflops)
      [ (false, "constant-cache-fed"); (true, "register-fed") ]
  in
  List.iter print_string rows;
  print_newline ()


let ablation_chem_comm () =
  header
    "Ablation: chemistry communication policy (staged / mixed / recompute), \
     32^3 points";
  List.iter
    (fun (mech_name, mech) ->
      List.iter
        (fun arch ->
          let best =
            tune mech Singe.Kernel_abi.Chemistry Singe.Compile.Warp_specialized
              arch
          in
          Printf.printf "%s chemistry on %s (autotuned: %d warps):\n" mech_name
            arch.Gpusim.Arch.name
            best.Singe.Autotune.options.Singe.Compile.n_warps;
          let rows =
            Sutil.Domain_pool.parallel_map
              (fun (comm, label) ->
                let options =
                  { best.Singe.Autotune.options with Singe.Compile.chem_comm = Some comm }
                in
                match
                  let c =
                    Singe.Compile.compile_cached mech Singe.Kernel_abi.Chemistry
                      Singe.Compile.Warp_specialized options
                  in
                  (c, Singe.Compile.run c ~total_points:32768)
                with
                | c, r ->
                    let p = c.Singe.Compile.lowered.Singe.Lower.program in
                    Printf.sprintf
                      "  %-10s %10.3e points/s, %5.1f KB shared, %5d B spilled\n"
                      label
                      r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
                      (float_of_int (p.Gpusim.Isa.shared_doubles * 8) /. 1024.)
                      c.Singe.Compile.lowered.Singe.Lower.spill_bytes_per_thread
                | exception Failure msg ->
                    Printf.sprintf "  %-10s does not fit (%s)\n" label msg)
              [
                (Singe.Compile.Chem_staged, "staged");
                (Singe.Compile.Chem_mixed, "mixed");
                (Singe.Compile.Chem_recompute, "recompute");
              ]
          in
          List.iter print_string rows)
        (archs ()))
    [ ("dme", Chem.Mech_gen.dme ()) ];
  print_newline ()

let ablation_weights () =
  header
    "Ablation: domain hints vs greedy mapping weights (DME viscosity on \
     Kepler). The DSL's partitioning hints pin the mapping; without them \
     the greedy assignment must rediscover the structure from its \
     FLOP/register/locality weights alone.";
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let best = tune mech Singe.Kernel_abi.Viscosity Singe.Compile.Warp_specialized arch in
  (let r = Singe.Compile.run best.Singe.Autotune.compiled ~total_points:32768 in
   Printf.printf "  %-28s %8.3e points/s\n%!" "domain hints (the DSL)"
     r.Singe.Compile.machine.Gpusim.Machine.points_per_sec);
  let rows =
    Sutil.Domain_pool.parallel_map
      (fun (weights, label) ->
        (* Hints pin most of the viscosity mapping; drop them so the greedy
           weights actually decide the assignment. *)
        let options =
          { best.Singe.Autotune.options with
            Singe.Compile.weights;
            respect_hints = false }
        in
        match
          let c =
            Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity
              Singe.Compile.Warp_specialized options
          in
          (c, Singe.Compile.run c ~total_points:32768)
        with
        | c, r ->
            let imb =
              let loads =
                Singe.Mapping.warp_flops c.Singe.Compile.dfg c.Singe.Compile.mapping
              in
              let mx = Array.fold_left max 0 loads
              and mn = Array.fold_left min max_int loads in
              float_of_int mx /. float_of_int (max 1 mn)
            in
            Printf.sprintf "  %-28s %8.3e points/s  (max/min warp FLOPs %.2f)\n"
              label r.Singe.Compile.machine.Gpusim.Machine.points_per_sec imb
        | exception Failure msg ->
            Printf.sprintf "  %-28s does not fit (%s)\n" label msg)
      [
      (Singe.Mapping.default_weights, "default (1.0/0.25/0.5)");
      ({ Singe.Mapping.w_flops = 1.0; w_regs = 0.0; w_locality = 0.0 }, "flops only");
      ({ Singe.Mapping.w_flops = 0.0; w_regs = 1.0; w_locality = 0.0 }, "registers only");
      ({ Singe.Mapping.w_flops = 0.0; w_regs = 0.0; w_locality = 1.0 }, "locality only");
      ({ Singe.Mapping.w_flops = 1.0; w_regs = 1.0; w_locality = 1.0 }, "uniform");
    ]
  in
  List.iter print_string rows;
  print_newline ()

let model_accuracy () =
  header
    "Model accuracy: analytic performance model (Perf_model) vs simulator, \
     predicted and measured SM cycles per kernel/version";
  let mechs =
    if fast () then [ Chem.Mech_gen.dme () ]
    else [ Chem.Mech_gen.dme (); Chem.Mech_gen.heptane () ]
  in
  let arch = Gpusim.Arch.kepler_k20c in
  let points = 32768 in
  let configs =
    List.concat_map
      (fun mech ->
        List.concat_map
          (fun kernel ->
            List.map
              (fun version -> (mech, kernel, version))
              [ Singe.Compile.Warp_specialized; Singe.Compile.Baseline ])
          [
            Singe.Kernel_abi.Viscosity;
            Singe.Kernel_abi.Diffusion;
            Singe.Kernel_abi.Chemistry;
            Singe.Kernel_abi.Stencil Singe.Stencil_pipe.Edge3;
            Singe.Kernel_abi.Stencil Singe.Stencil_pipe.Unsharp2;
          ])
      mechs
  in
  Printf.printf "  %-8s %-10s %-5s %12s %12s %7s  %s\n" "mech" "kernel"
    "vers" "predicted" "simulated" "err" "binding";
  let rows =
    Sutil.Domain_pool.parallel_map
      (fun (mech, kernel, version) ->
        let options =
          { (Singe.Compile.default_options arch) with
            Singe.Compile.max_barriers =
              (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
            ctas_per_sm_target =
              (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2) }
        in
        let c = Singe.Compile.compile_cached mech kernel version options in
        let pred = Singe.Perf_model.predict c ~total_points:points in
        let r = Singe.Compile.run c ~total_points:points in
        let measured =
          float_of_int r.Singe.Compile.machine.Gpusim.Machine.sm_cycles
        in
        let err =
          Singe.Perf_model.rel_err
            ~predicted:pred.Singe.Perf_model.cycles ~measured
        in
        ( err,
          Printf.sprintf "  %-8s %-10s %-5s %12.0f %12.0f %6.1f%%  %s\n"
            mech.Chem.Mechanism.name
            (Singe.Kernel_abi.kernel_name kernel)
            (match version with
            | Singe.Compile.Warp_specialized -> "ws"
            | Singe.Compile.Baseline -> "base"
            | Singe.Compile.Naive_warp_specialized -> "naive")
            pred.Singe.Perf_model.cycles measured (100.0 *. err)
            pred.Singe.Perf_model.binding ))
      configs
  in
  List.iter (fun (_, s) -> print_string s) rows;
  let worst = List.fold_left (fun a (e, _) -> Float.max a e) 0.0 rows in
  Printf.printf "  worst relative error: %.1f%%\n" (100.0 *. worst);
  print_newline ()

let ablation_batches () =
  header
    "Ablation (§6.2): constant-load amortization across streaming batches \
     (DME diffusion on Kepler)";
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let best = tune mech Singe.Kernel_abi.Diffusion Singe.Compile.Warp_specialized arch in
  let rows =
    Sutil.Domain_pool.parallel_map
      (fun points ->
        let r =
          Singe.Compile.run best.Singe.Autotune.compiled ~total_points:points
        in
        Printf.sprintf "  %8d points: %10.3e points/s (%5.1f GFLOPS)\n" points
          r.Singe.Compile.machine.Gpusim.Machine.points_per_sec
          r.Singe.Compile.machine.Gpusim.Machine.gflops)
      [ 416; 832; 1664; 3328; 6656; 13312; 32768; 262144 ]
  in
  List.iter print_string rows;
  print_newline ()

let ablation_exchange () =
  header
    "Ablation: shuffle-exchange superoptimizer (same-warp shared-memory \
     round-trips rewritten into register forwards and lane-shuffle \
     programs), DME warp-specialized on Kepler, 32^3 points";
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  Printf.printf "  %-10s %11s %11s %7s %8s %6s %8s %9s %9s\n" "kernel"
    "off-cycles" "on-cycles" "saved" "rewrites" "trips" "shuffles" "shmem-off"
    "shmem-on";
  let rows =
    Sutil.Domain_pool.parallel_map
      (fun kernel ->
        let eval synth =
          let options =
            { (Singe.Compile.default_options arch) with
              Singe.Compile.max_barriers =
                (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
              ctas_per_sm_target =
                (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2);
              synth_exchange = Some synth }
          in
          let c =
            Singe.Compile.compile_cached mech kernel
              Singe.Compile.Warp_specialized options
          in
          (c, Singe.Compile.run c ~total_points:32768)
        in
        let c_on, r_on = eval true in
        let _, r_off = eval false in
        let cycles (r : Singe.Compile.run_result) =
          r.Singe.Compile.machine.Gpusim.Machine.sm_cycles
        in
        let ex = c_on.Singe.Compile.lowered.Singe.Lower.exchange in
        let kb (c : Singe.Compile.t) =
          float_of_int
            (c.Singe.Compile.lowered.Singe.Lower.program
               .Gpusim.Isa.shared_doubles * 8)
          /. 1024.
        in
        let c_off, _ = eval false in
        Printf.sprintf
          "  %-10s %11d %11d %6.2f%% %8d %6d %8d %8.1fK %8.1fK\n"
          (Singe.Kernel_abi.kernel_name kernel)
          (cycles r_off) (cycles r_on)
          (100.0
          *. float_of_int (cycles r_off - cycles r_on)
          /. Float.max 1.0 (float_of_int (cycles r_off)))
          ex.Singe.Shuffle_synth.sites_rewritten
          ex.Singe.Shuffle_synth.round_trips_removed
          ex.Singe.Shuffle_synth.shuffle_steps (kb c_off) (kb c_on))
      [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion;
        Singe.Kernel_abi.Chemistry ]
  in
  List.iter print_string rows;
  print_newline ()

let chip_scaling () =
  header
    "Chip scaling: DME viscosity throughput vs SM count on Kepler (fixed \
     grid, greedy CTA dispatch, shared DRAM arbiter)";
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let points = if fast () then 262144 else 2097152 in
  let c =
    Singe.Compile.compile_cached mech Singe.Kernel_abi.Viscosity
      Singe.Compile.Warp_specialized
      (Singe.Compile.default_options arch)
  in
  Printf.printf "  %-6s %14s %9s %10s %10s %9s\n" "SMs" "points/s" "speedup"
    "DRAM-util" "throttle" "imbal";
  let sm_counts =
    List.filter
      (fun n -> n <= arch.Gpusim.Arch.n_sms)
      [ 1; 2; 4; 8; arch.Gpusim.Arch.n_sms ]
  in
  let rows =
    Sutil.Domain_pool.parallel_map
      (fun n_sms ->
        let r = Singe.Compile.run c ~total_points:points ~n_sms in
        let m = r.Singe.Compile.machine in
        let ch = m.Gpusim.Machine.chip in
        ( n_sms,
          m.Gpusim.Machine.points_per_sec,
          ch.Gpusim.Chip.contention.Gpusim.Chip.dram_util,
          ch.Gpusim.Chip.contention.Gpusim.Chip.throttle_max,
          Gpusim.Chip.dispatch_imbalance ch ))
      (List.sort_uniq compare sm_counts)
  in
  let base =
    match rows with (_, t, _, _, _) :: _ -> t | [] -> assert false
  in
  List.iter
    (fun (n_sms, pps, util, thr, imb) ->
      Printf.printf "  %-6d %14.4g %8.2fx %9.0f%% %9.2fx %8.1f%%\n" n_sms pps
        (pps /. base) (100.0 *. util) thr (100.0 *. imb))
    rows;
  print_newline ()

let partition_search () =
  header
    "Partition search: hand vs searched producer/consumer split\n\
     warp-specialized kernels on Kepler; SM cycles at 32^3 points";
  let arch = Gpusim.Arch.kepler_k20c in
  (* Fast mode stops at the analytic ranking; the full figure confirms
     every winner by simulation through the autotuner. *)
  let simulate = not (fast ()) in
  Printf.printf "  %-8s %-10s %12s %12s %7s %9s  %s\n" "mech" "kernel" "hand"
    "searched" "gain" "gate" "winner";
  List.iter
    (fun mech ->
      List.iter
        (fun kernel ->
          let base =
            { (Singe.Compile.default_options arch) with
              Singe.Compile.n_warps = 8;
              max_barriers =
                (if kernel = Singe.Kernel_abi.Chemistry then 16 else 8);
              ctas_per_sm_target =
                (if kernel = Singe.Kernel_abi.Chemistry then 1 else 2) }
          in
          match
            Singe.Partition_search.search ~simulate mech kernel
              Singe.Compile.Warp_specialized ~base ()
          with
          | Error d ->
              Printf.printf "  %-8s %-10s skipped: %s\n"
                mech.Chem.Mechanism.name
                (Singe.Kernel_abi.kernel_name kernel)
                (Singe.Diagnostics.to_string d)
          | Ok o ->
              let gain =
                100.0
                *. (o.Singe.Partition_search.hand_cycles
                   -. o.Singe.Partition_search.winner_cycles)
                /. Float.max 1.0 o.Singe.Partition_search.hand_cycles
              in
              Printf.printf "  %-8s %-10s %12.0f %12.0f %6.1f%% %3d/%d/%-3d  %s\n"
                mech.Chem.Mechanism.name
                (Singe.Kernel_abi.kernel_name kernel)
                o.Singe.Partition_search.hand_cycles
                o.Singe.Partition_search.winner_cycles gain
                o.Singe.Partition_search.searched
                o.Singe.Partition_search.gated
                (List.length o.Singe.Partition_search.rejections)
                (match o.Singe.Partition_search.winner_spec with
                | Some spec ->
                    Format.asprintf "%a (slots %d)" Singe.Mapping.pp_auto_spec
                      spec
                      o.Singe.Partition_search.winner.Singe.Compile.buffer_slots
                | None -> "hand mapping retained"))
        [ Singe.Kernel_abi.Viscosity; Singe.Kernel_abi.Diffusion;
          Singe.Kernel_abi.Chemistry ])
    [ Chem.Mech_gen.dme (); Chem.Mech_gen.heptane () ];
  Printf.printf
    "  (gate column: candidates scored / gate survivors / rejected; every \
     winner passed the static deadlock verifier%s)\n"
    (if simulate then " and was confirmed by simulation" else "");
  print_newline ()

let stencil_overlap () =
  header
    "Stencil tiling: warp-overlapped (halo recompute, single-producer tile \
     handoffs) vs non-overlapped (cross-warp halo reads through shared \
     memory), hand band mapping vs searched partition\n\
     stencil pipelines on Kepler; SM cycles at 32^3 points";
  let mech = Chem.Mech_gen.dme () in
  let arch = Gpusim.Arch.kepler_k20c in
  let points = 32768 in
  Printf.printf "  %-10s %-14s %12s %12s %7s  %s\n" "pipeline" "tiling" "hand"
    "auto" "gain" "winner";
  List.iter
    (fun id ->
      let kernel = Singe.Kernel_abi.Stencil id in
      List.iter
        (fun overlap ->
          let base =
            { (Singe.Compile.default_options arch) with
              Singe.Compile.stencil_overlap = overlap }
          in
          let cycles options =
            let c =
              Singe.Compile.compile_cached mech kernel
                Singe.Compile.Warp_specialized options
            in
            let r = Singe.Compile.run c ~total_points:points in
            float_of_int r.Singe.Compile.machine.Gpusim.Machine.sm_cycles
          in
          let hand = cycles base in
          match
            Singe.Partition_search.resolve_options mech kernel
              Singe.Compile.Warp_specialized ~base
          with
          | resolved ->
              let auto = cycles resolved in
              let gain = 100.0 *. (hand -. auto) /. Float.max 1.0 hand in
              Printf.printf "  %-10s %-14s %12.0f %12.0f %6.1f%%  %s\n"
                (Singe.Stencil_pipe.id_name id)
                (if overlap then "overlapped" else "non-overlapped")
                hand auto gain
                (match resolved.Singe.Compile.partition with
                | Singe.Compile.Partition_auto spec ->
                    Format.asprintf "%a" Singe.Mapping.pp_auto_spec spec
                | Singe.Compile.Partition_hand -> "hand mapping retained")
          | exception Singe.Diagnostics.Fail d ->
              Printf.printf "  %-10s %-14s %12.0f %12s  search rejected: %s\n"
                (Singe.Stencil_pipe.id_name id)
                (if overlap then "overlapped" else "non-overlapped")
                hand "-"
                (Singe.Diagnostics.to_string d))
        [ true; false ])
    Singe.Stencil_pipe.all_ids;
  print_newline ()

let all () =
  fig3 ();
  fig9 ();
  fig10 ();
  fig11 ();
  fig12 ();
  fig13 ();
  fig14 ();
  fig15 ();
  fig16 ();
  stall_breakdown ();
  ablation_barriers ();
  ablation_exp_constants ();
  ablation_chem_comm ();
  ablation_weights ();
  ablation_batches ();
  ablation_exchange ();
  model_accuracy ();
  chip_scaling ();
  partition_search ();
  stencil_overlap ()
