(** The virtual warp-level ISA that Singe lowers kernels to.

    Programs are executed both {e functionally} (IEEE doubles, exact) and
    under the cycle-level timing model of {!Sm}. All control flow is
    structured and static: warp-ID branches ({!If_warps}, {!Switch_warp})
    and the per-CTA streaming batch loop; there are no data-dependent
    branches (combustion kernels have none — [max] handles the clamps).

    A thread's double-precision registers are modelled as an array of
    64-bit values; each consumes two 32-bit hardware registers when
    computing occupancy. Integer registers hold warp-indexing constants
    (§5.3).

    Memory spaces:
    {ul
    {- {e global}: named field groups in structure-of-arrays layout,
       addressed by the lane's current grid point;}
    {- {e shared}: per-CTA scratch addressed in doubles;}
    {- {e local}: per-thread spill slots, backed by DRAM through the slow
       local path;}
    {- {e constant}: read-only slots reached through the 8 KB constant
       cache;}
    {- {e const bank / param bank}: the per-(warp, lane) striped constant
       and index arrays of §5.2/5.3, materialized by the compiler and
       loaded into registers by prologue code.}} *)

type fop =
  | Add
  | Sub
  | Mul
  | Fma  (** dst = s0 * s1 + s2 *)
  | Div
  | Sqrt
  | Exp
  | Log
  | Max
  | Min
  | Neg

val fop_arity : fop -> int

val fop_flops : fop -> int
(** FLOPs counted per lane (Exp/Log count their polynomial-expansion DFMAs,
    matching how SASS-level FLOP counting sees them: 24). *)

val fop_dp_slots : fop -> float
(** DP-pipe occupancy in equivalent DFMA issue slots (Exp = 17: 12-14
    polynomial DFMAs plus range reduction). *)

val fop_lat_mult : fop -> int
(** Result-latency multiplier over [Arch.arith_latency] (Div/Sqrt 3,
    Exp/Log 5) — the same figure the simulator's trace metadata carries. *)

type pred =
  | Lane_eq of int
  | Lane_lt of int
      (** Lane predicates (within-warp masking, e.g. Listing 2's
          [if (lane_id == 3)]). *)

type saddr = {
  s_base : int;
  s_warp_mul : int;  (** coefficient on the warp id *)
  s_lane_mul : int;  (** coefficient on the lane id *)
  s_ireg : int option;  (** optional integer register *)
  s_ireg_mul : int;
}
(** Shared-memory address in doubles:
    [base + warp_mul*warp + lane_mul*lane + ireg_mul*iregs.(ireg)]. *)

val sh : int -> saddr
(** Uniform address (broadcast read / single write). *)

val sh_lane : ?mul:int -> int -> saddr
(** [base + mul*lane] (default stride 1). *)

val sh_warp : int -> saddr
(** [base + warp]: one slot per warp (the Fermi broadcast mirror). *)

val sh_ireg : ?lane_mul:int -> base:int -> ireg:int -> mul:int -> unit -> saddr

type src =
  | Sreg of int  (** double register *)
  | Simm of float
  | Sconst of int  (** constant-memory slot, through the constant cache *)
  | Sconst_warp of int
      (** constant memory at [base + warp_id]: dynamic constant addressing
          holding per-warp values (the overflow home for constants beyond
          the register banks) *)
  | Sshared of saddr  (** shared-memory operand *)

type field_sel =
  | F_static of int
  | F_ireg of int  (** field chosen by an integer register: warp indexing *)

type instr =
  | Arith of { op : fop; dst : int; srcs : src array; pred : pred option }
  | Mov of { dst : int; src : src; pred : pred option }
  | Ld_global of {
      dst : int;
      group : int;
      field : field_sel;
      via_tex : bool;
      pred : pred option;
    }  (** loads the lane's current point of the selected field *)
  | St_global of {
      src : src;
      group : int;
      field : field_sel;
      pred : pred option;
    }
  | Ld_shared of { dst : int; addr : saddr; pred : pred option }
  | St_shared of { src : src; addr : saddr; pred : pred option }
  | Ld_local of { dst : int; slot : int }  (** register spill reload *)
  | St_local of { src : int; slot : int }  (** register spill *)
  | Ld_const_bank of { dst : int; slot : int }
      (** prologue load of a striped constant: dst.(lane) =
          const_bank.(warp).(lane).(slot) *)
  | Ld_param of { dst_i : int; slot : int }
      (** prologue load of a striped warp-index constant *)
  | Shfl of { dst : int; src : int; lane : int }
      (** double broadcast from a lane (two 32-bit shuffles on Kepler,
          Listing 3) *)
  | Ishfl of { dst_i : int; src_i : int; lane : int }
  | Shfl_rot of { dst : int; src : int; delta : int }
      (** lane rotation: lane [l] receives [src] from lane
          [(l + delta) mod 32] — PTX [shfl.idx] with wraparound, the
          synthesized-exchange workhorse (two 32-bit shuffles per double) *)
  | Shfl_bfly of { dst : int; src : int; xor_mask : int }
      (** butterfly exchange: lane [l] receives [src] from lane
          [l lxor xor_mask] — PTX [shfl.bfly] *)
  | Bar_arrive of { bar : int; count : int }
      (** non-blocking named-barrier arrival *)
  | Bar_sync of { bar : int; count : int }  (** blocking named-barrier wait *)
  | Bar_cta  (** classic CTA-wide __syncthreads *)

type block =
  | Instrs of instr list
  | Seq of block list
  | If_warps of { mask : int; body : block }
      (** §5.1 bit-mask warp filter: warps whose bit is set execute the
          body; the others skip (but fetch the branch) *)
  | Switch_warp of block array
      (** §5.1 indirect branch on warp id; length = warps per CTA *)

type point_map =
  | Coop  (** all warps of a CTA cooperate on the same 32 points per batch *)
  | Thread_per_point  (** data-parallel: lane of warp w owns point w*32+lane *)

type group_info = { group_name : string; fields : int }

type program = {
  name : string;
  n_warps : int;
  n_fregs : int;  (** allocated double registers per thread *)
  n_iregs : int;
  shared_doubles : int;
  local_doubles : int;  (** per-thread spill slots *)
  barriers_used : int;
  point_map : point_map;
  prologue : block;  (** once per CTA (constant / index loading) *)
  body : block;  (** once per point batch *)
  const_bank : float array array array;  (** warp -> lane -> slot *)
  param_bank : int array array array;
  const_mem : float array;
  groups : group_info array;
  exp_consts_in_registers : bool;
      (** ablation of §6.1: feed Exp's polynomial from registers instead of
          the constant cache *)
}

val iter_instrs : block -> (instr -> unit) -> unit

val static_instr_count : block -> int

val static_bytes : Arch.t -> instr -> int
(** Code footprint: multi-slot ops (Exp, Div...) occupy their expanded
    sequence length. *)

val regs32_per_thread : program -> int
(** 32-bit registers per thread for occupancy: two per double register, one
    per integer register, plus a fixed overhead for pointers/indices. *)

val validate : program -> (unit, string list) result
(** Static checks: register/shared/local/barrier indices in range, predicate
    and shuffle lanes (and rotation deltas / butterfly masks) within
    [\[0, 32)], Switch_warp arity, bank dimensions. Per-instruction
    problems are positioned ("body[17]: shfl: lane 33 outside [0, 32)"). *)

val pp_instr : Format.formatter -> instr -> unit
val pp_block : Format.formatter -> block -> unit
