(** Static flattening of a structured program into per-warp instruction
    traces.

    Because all control flow depends only on the warp id (and the implicit
    batch loop), each warp's dynamic instruction sequence is statically
    known. The flattener lays code out in program order, assigning every
    instruction a byte address for the instruction-cache model, and emits a
    synthetic {e branch} entry (executed by every warp that reaches it) for
    each [If_warps] / [Switch_warp] construct — the "warp-specific branch
    instructions" whose cost §2 mentions. *)

type entry = {
  instr : Isa.instr option;  (** [None] for a synthetic branch *)
  addr : int;  (** code byte address *)
  srcs : Isa.src array;
      (** scoreboard source operands (Mov/St singletons prebuilt, so the
          simulator's issue path allocates nothing per attempt) *)
  shared_srcs : Isa.saddr array;  (** shared-memory operands among [srcs] *)
  has_const : bool;  (** any operand reads the constant cache *)
  lat_mult : int;  (** arith latency multiplier (Div/Sqrt 3, Exp/Log 5) *)
  dp_slots : float;  (** [Isa.fop_dp_slots] of the arith op, else 0 *)
  flops : int;  (** [Isa.fop_flops] of the arith op, else 0 *)
}
(** Per-entry issue metadata precomputed by {!flatten}: everything
    {!Sm.run}'s issue path would otherwise re-derive from the instruction
    on every attempt. *)

type t = {
  entries : entry array;
  prologue : int array array;  (** per warp: entry indices *)
  body : int array array;  (** per warp: entry indices, one batch *)
  code_bytes : int;
  max_srcs : int;  (** largest [srcs] arity over all entries *)
}

val flatten : Arch.t -> Isa.program -> t

val body_footprint_bytes : t -> warp:int -> int
(** Total code bytes the given warp touches in one batch (the per-warp
    instruction-stream footprint that drives Fig. 9). *)

type cursor = {
  mutable phase : int;  (** 0 = prologue, 1 = body, 2 = done *)
  mutable pos : int;
  mutable batch : int;
}

val cursor : unit -> cursor

val peek : t -> warp:int -> batches:int -> cursor -> int option
(** Entry index the cursor points at, or [None] when the warp is done. *)

val advance : t -> warp:int -> batches:int -> cursor -> unit
