(* Per-warp cycle attribution: the data produced by [Sm.run ?profile].

   The simulator issues at most [schedulers] instructions per cycle and
   fast-forwards over dead time, so the profiler cannot walk every
   (warp, cycle) pair. Instead each warp carries a tiny ledger — the
   cycle its current *span* started and the bucket that span accrues
   into — and a span is flushed whenever the warp's classification
   changes (it issues, its block reason changes, it stalls, parks on a
   barrier, or retires). Because every flush advances the span origin to
   the current cycle and issue cycles are credited explicitly, the
   buckets of one warp always sum to the total cycle count exactly:

     forall w.  sum_b buckets.(w).(b) = cycles

   which is the conservation invariant `test/test_profile.ml` pins for
   every shipped kernel. Attribution inside a span is the reason
   observed at the scheduler's visits; a warp skipped only because the
   cycle's issue slots were spent keeps its previous class (for a warp
   that just issued that is the [issue] bucket, read as issue-slot
   contention). *)

(* ---- bucket taxonomy ----

   Buckets are plain ints so [Sm]'s hot path can index arrays without
   boxing. The taxonomy follows the paper's §6 discussion: where does a
   warp-specialized warp spend its life? *)

let issue = 0 (* issuing, or contending for one of the issue slots *)
let arith = 1 (* scoreboard wait on an arithmetic producer, DP/ALU port busy *)
let mem = 2 (* scoreboard wait on a load, LD/ST or shared port busy *)
let bar_named = 3 (* parked on a named barrier (incl. post-release latency) *)
let bar_cta = 4 (* parked on the CTA-wide barrier *)
let icache = 5 (* instruction-fetch miss or in-flight fill *)
let ccache = 6 (* constant-cache miss or in-flight fill *)
let idle = 7 (* retired (and the pre-first-visit prologue gap) *)
let n_buckets = 8

let bucket_names =
  [|
    "issue"; "arith"; "memory"; "barrier"; "cta-barrier"; "icache"; "ccache";
    "idle";
  |]

(* ---- per-barrier wait histograms ---- *)

let hist_buckets = 24

(* Log2 bucket of a wait length: 0 -> 0, otherwise 1 + floor(log2 w),
   capped. Bucket i >= 1 holds waits in [2^(i-1), 2^i). *)
let hist_bucket w =
  if w <= 0 then 0
  else begin
    let b = ref 0 and v = ref w in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    min (hist_buckets - 1) !b
  end

type bar_wait = {
  bw_bar : int;  (** barrier id; -1 encodes the CTA-wide barrier *)
  bw_count : int;  (** completed waits (warp-release events) *)
  bw_total : int;  (** warp-cycles from park to release *)
  bw_max : int;
  bw_hist : int array;  (** [hist_buckets] log2 buckets; sums to bw_count *)
}

(* ---- timeline ---- *)

type span = {
  sp_warp : int;
  sp_bucket : int;
  sp_start : int;
  sp_stop : int;  (** exclusive *)
}

type t = {
  cycles : int;
  warps : (int * int) array;  (** warp index -> (cta, wid) *)
  buckets : int array array;  (** [warp index][bucket] warp-cycles *)
  bar_waits : bar_wait list;  (** barriers with at least one completed wait *)
  timeline : span array;  (** chronological by span end; ring-truncated *)
  timeline_dropped : int;  (** spans evicted from the ring, 0 if it held *)
}

let n_warps t = Array.length t.warps
let total_warp_cycles t = t.cycles * n_warps t

let bucket_totals t =
  let tot = Array.make n_buckets 0 in
  Array.iter
    (fun row -> Array.iteri (fun i v -> tot.(i) <- tot.(i) + v) row)
    t.buckets;
  tot

let conservation_residual t =
  Array.fold_left
    (fun acc row -> Array.fold_left ( + ) acc row)
    0 t.buckets
  - total_warp_cycles t

let conservation_ok t = conservation_residual t = 0

(* Largest wait-bucket cells (issue and idle excluded), descending;
   ties break on warp then bucket so output is deterministic. *)
let top_stalls ?(n = 10) t =
  let all = ref [] in
  Array.iteri
    (fun w row ->
      Array.iteri
        (fun b v ->
          if b <> issue && b <> idle && v > 0 then all := (w, b, v) :: !all)
        row)
    t.buckets;
  let sorted =
    List.sort
      (fun (w1, b1, v1) (w2, b2, v2) ->
        if v1 <> v2 then compare v2 v1 else compare (w1, b1) (w2, b2))
      !all
  in
  List.filteri (fun i _ -> i < n) sorted

(* ---- rendering ---- *)

let pp_breakdown ppf t =
  let nw = n_warps t in
  Format.fprintf ppf
    "per-warp cycle attribution: %d cycles x %d warps = %d warp-cycles (%s)@,"
    t.cycles nw (total_warp_cycles t)
    (if conservation_ok t then "conserved"
     else Printf.sprintf "NOT conserved, residual %d" (conservation_residual t));
  Format.fprintf ppf "%-10s" "warp";
  Array.iter (fun name -> Format.fprintf ppf " %11s" name) bucket_names;
  Format.pp_print_cut ppf ();
  Array.iteri
    (fun w row ->
      let cta, wid = t.warps.(w) in
      Format.fprintf ppf "%-10s" (Printf.sprintf "cta%d/w%d" cta wid);
      Array.iter (fun v -> Format.fprintf ppf " %11d" v) row;
      Format.pp_print_cut ppf ())
    t.buckets;
  let tot = bucket_totals t in
  Format.fprintf ppf "%-10s" "total";
  Array.iter (fun v -> Format.fprintf ppf " %11d" v) tot;
  Format.pp_print_cut ppf ();
  let denom = Float.max 1.0 (float_of_int (total_warp_cycles t)) in
  Format.fprintf ppf "%-10s" "share";
  Array.iter
    (fun v ->
      Format.fprintf ppf " %10.1f%%" (100.0 *. float_of_int v /. denom))
    tot

let pp_bar_waits ppf t =
  List.iter
    (fun b ->
      Format.fprintf ppf
        "%s: %d waits, %d warp-cycles total, %d max, median bucket [%s)@,"
        (if b.bw_bar < 0 then "CTA-wide barrier"
         else Printf.sprintf "named barrier %d" b.bw_bar)
        b.bw_count b.bw_total b.bw_max
        (let seen = ref 0 and median = ref 0 in
         Array.iteri
           (fun i n ->
             if !seen * 2 < b.bw_count then begin
               seen := !seen + n;
               median := i
             end)
           b.bw_hist;
         if !median = 0 then "0, 1"
         else Printf.sprintf "%d, %d" (1 lsl (!median - 1)) (1 lsl !median)))
    t.bar_waits

(* ---- serialization ---- *)

(* Chrome trace-event JSON ("X" complete events): one event per span,
   pid = CTA, tid = warp id within the CTA, ts/dur in simulated cycles.
   Events are sorted by start time so any consumer (and our own tests)
   sees monotone timestamps. *)
let to_chrome_trace t =
  let spans = Array.copy t.timeline in
  Array.sort
    (fun a b ->
      if a.sp_start <> b.sp_start then compare a.sp_start b.sp_start
      else compare (a.sp_warp, a.sp_stop) (b.sp_warp, b.sp_stop))
    spans;
  let buf = Buffer.create (256 + (Array.length spans * 96)) in
  Buffer.add_string buf "{\"displayTimeUnit\": \"ns\", \"otherData\": {";
  Printf.bprintf buf
    "\"cycles\": %d, \"n_warps\": %d, \"dropped_spans\": %d}, " t.cycles
    (n_warps t) t.timeline_dropped;
  Buffer.add_string buf "\"traceEvents\": [";
  Array.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ", ";
      let cta, wid = t.warps.(s.sp_warp) in
      Printf.bprintf buf
        "{\"name\": \"%s\", \"cat\": \"warp\", \"ph\": \"X\", \"pid\": %d, \
         \"tid\": %d, \"ts\": %d, \"dur\": %d, \"args\": {\"warp\": %d}}"
        bucket_names.(s.sp_bucket) cta wid s.sp_start (s.sp_stop - s.sp_start)
        s.sp_warp)
    spans;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* The perf-snapshot payload: totals plus the full per-warp breakdown
   (timeline spans are deliberately excluded — they belong in the Chrome
   trace, not a perf time series). *)
let to_json t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "{\"cycles\": %d, \"n_warps\": %d, \"conserved\": %b"
    t.cycles (n_warps t) (conservation_ok t);
  let tot = bucket_totals t in
  Buffer.add_string buf ", \"totals\": {";
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf "\"%s\": %d" bucket_names.(i) v)
    tot;
  Buffer.add_string buf "}, \"warps\": [";
  Array.iteri
    (fun w row ->
      if w > 0 then Buffer.add_string buf ", ";
      let cta, wid = t.warps.(w) in
      Printf.bprintf buf "{\"cta\": %d, \"wid\": %d" cta wid;
      Array.iteri
        (fun i v -> Printf.bprintf buf ", \"%s\": %d" bucket_names.(i) v)
        row;
      Buffer.add_char buf '}')
    t.buckets;
  Buffer.add_string buf "], \"bar_waits\": [";
  List.iteri
    (fun i b ->
      if i > 0 then Buffer.add_string buf ", ";
      Printf.bprintf buf
        "{\"bar\": %d, \"count\": %d, \"total\": %d, \"max\": %d}" b.bw_bar
        b.bw_count b.bw_total b.bw_max)
    t.bar_waits;
  Buffer.add_string buf "]}";
  Buffer.contents buf
