(* Emission and parsing of the textual assembly. Floats travel as 64-bit
   hex patterns (exact); everything is line-oriented with {} blocks. *)

let bits f = Printf.sprintf "0x%016Lx" (Int64.bits_of_float f)

let float_of_bits_str s =
  Int64.float_of_bits (Int64.of_string s)

(* ---------- emission ---------- *)

let fop_name (op : Isa.fop) =
  match op with
  | Isa.Add -> "add"
  | Isa.Sub -> "sub"
  | Isa.Mul -> "mul"
  | Isa.Fma -> "fma"
  | Isa.Div -> "div"
  | Isa.Sqrt -> "sqrt"
  | Isa.Exp -> "exp"
  | Isa.Log -> "log"
  | Isa.Max -> "max"
  | Isa.Min -> "min"
  | Isa.Neg -> "neg"

let fop_of_name = function
  | "add" -> Some Isa.Add
  | "sub" -> Some Isa.Sub
  | "mul" -> Some Isa.Mul
  | "fma" -> Some Isa.Fma
  | "div" -> Some Isa.Div
  | "sqrt" -> Some Isa.Sqrt
  | "exp" -> Some Isa.Exp
  | "log" -> Some Isa.Log
  | "max" -> Some Isa.Max
  | "min" -> Some Isa.Min
  | "neg" -> Some Isa.Neg
  | _ -> None

let saddr_text (a : Isa.saddr) =
  let buf = Buffer.create 16 in
  Buffer.add_string buf (string_of_int a.Isa.s_base);
  if a.Isa.s_warp_mul <> 0 then
    Buffer.add_string buf (Printf.sprintf "+%dw" a.Isa.s_warp_mul);
  if a.Isa.s_lane_mul <> 0 then
    Buffer.add_string buf (Printf.sprintf "+%dl" a.Isa.s_lane_mul);
  (match a.Isa.s_ireg with
  | Some r -> Buffer.add_string buf (Printf.sprintf "+%di%d" a.Isa.s_ireg_mul r)
  | None -> ());
  Buffer.contents buf

let src_text (s : Isa.src) =
  match s with
  | Isa.Sreg r -> Printf.sprintf "f%d" r
  | Isa.Simm v -> Printf.sprintf "imm(%s)" (bits v)
  | Isa.Sconst c -> Printf.sprintf "c[%d]" c
  | Isa.Sconst_warp c -> Printf.sprintf "cw[%d]" c
  | Isa.Sshared a -> Printf.sprintf "[%s]" (saddr_text a)

let pred_text = function
  | None -> ""
  | Some (Isa.Lane_eq l) -> Printf.sprintf " @l==%d" l
  | Some (Isa.Lane_lt l) -> Printf.sprintf " @l<%d" l

let field_text = function
  | Isa.F_static f -> Printf.sprintf "f%d" f
  | Isa.F_ireg r -> Printf.sprintf "i[%d]" r

let instr_text (i : Isa.instr) =
  match i with
  | Isa.Arith { op; dst; srcs; pred } ->
      Printf.sprintf "%s f%d, %s%s" (fop_name op) dst
        (String.concat ", " (Array.to_list (Array.map src_text srcs)))
        (pred_text pred)
  | Isa.Mov { dst; src; pred } ->
      Printf.sprintf "mov f%d, %s%s" dst (src_text src) (pred_text pred)
  | Isa.Ld_global { dst; group; field; via_tex; pred } ->
      Printf.sprintf "ld.g f%d, g%d.%s%s%s" dst group (field_text field)
        (if via_tex then ", tex" else "")
        (pred_text pred)
  | Isa.St_global { src; group; field; pred } ->
      Printf.sprintf "st.g %s, g%d.%s%s" (src_text src) group
        (field_text field) (pred_text pred)
  | Isa.Ld_shared { dst; addr; pred } ->
      Printf.sprintf "ld.s f%d, [%s]%s" dst (saddr_text addr) (pred_text pred)
  | Isa.St_shared { src; addr; pred } ->
      Printf.sprintf "st.s %s, [%s]%s" (src_text src) (saddr_text addr)
        (pred_text pred)
  | Isa.Ld_local { dst; slot } -> Printf.sprintf "ld.l f%d, %d" dst slot
  | Isa.St_local { src; slot } -> Printf.sprintf "st.l f%d, %d" src slot
  | Isa.Ld_const_bank { dst; slot } -> Printf.sprintf "ld.cb f%d, %d" dst slot
  | Isa.Ld_param { dst_i; slot } -> Printf.sprintf "ld.p i%d, %d" dst_i slot
  | Isa.Shfl { dst; src; lane } -> Printf.sprintf "shfl f%d, f%d, %d" dst src lane
  | Isa.Ishfl { dst_i; src_i; lane } ->
      Printf.sprintf "ishfl i%d, i%d, %d" dst_i src_i lane
  | Isa.Shfl_rot { dst; src; delta } ->
      Printf.sprintf "shfl.rot f%d, f%d, %d" dst src delta
  | Isa.Shfl_bfly { dst; src; xor_mask } ->
      Printf.sprintf "shfl.bfly f%d, f%d, %d" dst src xor_mask
  | Isa.Bar_arrive { bar; count } -> Printf.sprintf "bar.arr %d, %d" bar count
  | Isa.Bar_sync { bar; count } -> Printf.sprintf "bar.sync %d, %d" bar count
  | Isa.Bar_cta -> "bar.cta"

let emit_block_into buf block =
  let rec go indent = function
    | Isa.Instrs l ->
        List.iter
          (fun i ->
            Buffer.add_string buf indent;
            Buffer.add_string buf (instr_text i);
            Buffer.add_char buf '\n')
          l
    | Isa.Seq bs -> List.iter (go indent) bs
    | Isa.If_warps { mask; body } ->
        Buffer.add_string buf (Printf.sprintf "%sif 0x%x {\n" indent mask);
        go (indent ^ "  ") body;
        Buffer.add_string buf (indent ^ "}\n")
    | Isa.Switch_warp arms ->
        Buffer.add_string buf (indent ^ "switch {\n");
        Array.iteri
          (fun w arm ->
            Buffer.add_string buf (Printf.sprintf "%s  warp %d {\n" indent w);
            go (indent ^ "    ") arm;
            Buffer.add_string buf (indent ^ "  }\n"))
          arms;
        Buffer.add_string buf (indent ^ "}\n")
  in
  go "  " block

let emit_block block =
  let buf = Buffer.create 4096 in
  emit_block_into buf block;
  Buffer.contents buf

let emit (p : Isa.program) =
  let buf = Buffer.create 65536 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr ".program %s\n" p.Isa.name;
  pr ".warps %d .fregs %d .iregs %d .shared %d .local %d .barriers %d\n"
    p.Isa.n_warps p.Isa.n_fregs p.Isa.n_iregs p.Isa.shared_doubles
    p.Isa.local_doubles p.Isa.barriers_used;
  pr ".pointmap %s\n"
    (match p.Isa.point_map with
    | Isa.Coop -> "coop"
    | Isa.Thread_per_point -> "thread");
  pr ".expconsts %b\n" p.Isa.exp_consts_in_registers;
  Array.iter
    (fun (g : Isa.group_info) -> pr ".group %s %d\n" g.Isa.group_name g.Isa.fields)
    p.Isa.groups;
  Array.iteri
    (fun w lanes ->
      Array.iteri
        (fun l slots ->
          if Array.length slots > 0 then
            pr ".bank w%d l%d = %s\n" w l
              (String.concat " " (Array.to_list (Array.map bits slots))))
        lanes)
    p.Isa.const_bank;
  Array.iteri
    (fun w lanes ->
      Array.iteri
        (fun l slots ->
          if Array.length slots > 0 then
            pr ".param w%d l%d = %s\n" w l
              (String.concat " "
                 (Array.to_list (Array.map string_of_int slots))))
        lanes)
    p.Isa.param_bank;
  if Array.length p.Isa.const_mem > 0 then
    pr ".constmem = %s\n"
      (String.concat " " (Array.to_list (Array.map bits p.Isa.const_mem)));
  pr ".prologue {\n";
  emit_block_into buf p.Isa.prologue;
  pr "}\n.body {\n";
  emit_block_into buf p.Isa.body;
  pr "}\n";
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Err of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Err (line, s))) fmt

let int_of line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail line "expected integer, got %S" s

let float_bits_of line s =
  match Int64.of_string_opt s with
  | Some _ -> float_of_bits_str s
  | None -> fail line "expected hex float bits, got %S" s

(* "12+8w+1l+4i2" -> saddr *)
let parse_saddr line text =
  let a =
    ref { Isa.s_base = 0; s_warp_mul = 0; s_lane_mul = 0; s_ireg = None; s_ireg_mul = 0 }
  in
  (* split into signed terms *)
  let terms = ref [] in
  let cur = Buffer.create 8 in
  String.iter
    (fun c ->
      if c = '+' && Buffer.length cur > 0 then begin
        terms := Buffer.contents cur :: !terms;
        Buffer.clear cur
      end
      else if c <> '+' then Buffer.add_char cur c)
    text;
  if Buffer.length cur > 0 then terms := Buffer.contents cur :: !terms;
  List.iter
    (fun t ->
      let n = String.length t in
      if n = 0 then fail line "empty shared-address term"
      else if t.[n - 1] = 'w' then
        a := { !a with Isa.s_warp_mul = int_of line (String.sub t 0 (n - 1)) }
      else if t.[n - 1] = 'l' then
        a := { !a with Isa.s_lane_mul = int_of line (String.sub t 0 (n - 1)) }
      else if String.contains t 'i' then begin
        let i = String.index t 'i' in
        a :=
          { !a with
            Isa.s_ireg_mul = int_of line (String.sub t 0 i);
            s_ireg = Some (int_of line (String.sub t (i + 1) (n - i - 1))) }
      end
      else a := { !a with Isa.s_base = int_of line t })
    (List.rev !terms);
  !a

let parse_src line s =
  let s = String.trim s in
  if String.length s = 0 then fail line "empty operand"
  else if s.[0] = 'f' then
    Isa.Sreg (int_of line (String.sub s 1 (String.length s - 1)))
  else if String.length s > 4 && String.sub s 0 4 = "imm(" then
    Isa.Simm (float_bits_of line (String.sub s 4 (String.length s - 5)))
  else if String.length s > 3 && String.sub s 0 3 = "cw[" then
    Isa.Sconst_warp (int_of line (String.sub s 3 (String.length s - 4)))
  else if String.length s > 2 && String.sub s 0 2 = "c[" then
    Isa.Sconst (int_of line (String.sub s 2 (String.length s - 3)))
  else if s.[0] = '[' then
    Isa.Sshared (parse_saddr line (String.sub s 1 (String.length s - 2)))
  else fail line "bad operand %S" s

let parse_pred line s =
  (* s like "l==3" or "l<4" *)
  if String.length s > 3 && String.sub s 0 3 = "l==" then
    Isa.Lane_eq (int_of line (String.sub s 3 (String.length s - 3)))
  else if String.length s > 2 && String.sub s 0 2 = "l<" then
    Isa.Lane_lt (int_of line (String.sub s 2 (String.length s - 2)))
  else fail line "bad predicate %S" s

let parse_field line s =
  if String.length s > 2 && String.sub s 0 2 = "i[" then
    Isa.F_ireg (int_of line (String.sub s 2 (String.length s - 3)))
  else if String.length s > 1 && s.[0] = 'f' then
    Isa.F_static (int_of line (String.sub s 1 (String.length s - 1)))
  else fail line "bad field selector %S" s

let split_operands s =
  (* comma split that respects [...] and (...) *)
  let parts = ref [] and cur = Buffer.create 16 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '[' | '(' ->
          incr depth;
          Buffer.add_char cur c
      | ']' | ')' ->
          decr depth;
          Buffer.add_char cur c
      | ',' when !depth = 0 ->
          parts := Buffer.contents cur :: !parts;
          Buffer.clear cur
      | c -> Buffer.add_char cur c)
    s;
  if Buffer.length cur > 0 || !parts <> [] then
    parts := Buffer.contents cur :: !parts;
  List.rev_map String.trim !parts

let parse_instr line text =
  (* strip predicate *)
  let text, pred =
    match String.index_opt text '@' with
    | Some i ->
        ( String.trim (String.sub text 0 i),
          Some
            (parse_pred line
               (String.trim (String.sub text (i + 1) (String.length text - i - 1))))
        )
    | None -> (String.trim text, None)
  in
  let mnemonic, rest =
    match String.index_opt text ' ' with
    | Some i ->
        ( String.sub text 0 i,
          String.trim (String.sub text (i + 1) (String.length text - i - 1)) )
    | None -> (text, "")
  in
  let ops = if rest = "" then [] else split_operands rest in
  let reg line s =
    match parse_src line s with
    | Isa.Sreg r -> r
    | _ -> fail line "expected register, got %S" s
  in
  let ireg line s =
    if String.length s > 1 && s.[0] = 'i' then
      int_of line (String.sub s 1 (String.length s - 1))
    else fail line "expected integer register, got %S" s
  in
  match (mnemonic, ops) with
  | "mov", [ d; s ] -> Isa.Mov { dst = reg line d; src = parse_src line s; pred }
  | "ld.g", d :: gf :: rest ->
      let via_tex = rest = [ "tex" ] in
      let g, f =
        match String.index_opt gf '.' with
        | Some i ->
            ( int_of line (String.sub gf 1 (i - 1)),
              parse_field line (String.sub gf (i + 1) (String.length gf - i - 1)) )
        | None -> fail line "bad global ref %S" gf
      in
      Isa.Ld_global { dst = reg line d; group = g; field = f; via_tex; pred }
  | "st.g", [ s; gf ] ->
      let g, f =
        match String.index_opt gf '.' with
        | Some i ->
            ( int_of line (String.sub gf 1 (i - 1)),
              parse_field line (String.sub gf (i + 1) (String.length gf - i - 1)) )
        | None -> fail line "bad global ref %S" gf
      in
      Isa.St_global { src = parse_src line s; group = g; field = f; pred }
  | "ld.s", [ d; a ] -> (
      match parse_src line a with
      | Isa.Sshared addr -> Isa.Ld_shared { dst = reg line d; addr; pred }
      | _ -> fail line "ld.s needs a shared address")
  | "st.s", [ s; a ] -> (
      match parse_src line a with
      | Isa.Sshared addr -> Isa.St_shared { src = parse_src line s; addr; pred }
      | _ -> fail line "st.s needs a shared address")
  | "ld.l", [ d; n ] -> Isa.Ld_local { dst = reg line d; slot = int_of line n }
  | "st.l", [ s; n ] -> Isa.St_local { src = reg line s; slot = int_of line n }
  | "ld.cb", [ d; n ] -> Isa.Ld_const_bank { dst = reg line d; slot = int_of line n }
  | "ld.p", [ d; n ] -> Isa.Ld_param { dst_i = ireg line d; slot = int_of line n }
  | "shfl", [ d; s; l ] ->
      Isa.Shfl { dst = reg line d; src = reg line s; lane = int_of line l }
  | "ishfl", [ d; s; l ] ->
      Isa.Ishfl { dst_i = ireg line d; src_i = ireg line s; lane = int_of line l }
  | "shfl.rot", [ d; s; n ] ->
      Isa.Shfl_rot { dst = reg line d; src = reg line s; delta = int_of line n }
  | "shfl.bfly", [ d; s; n ] ->
      Isa.Shfl_bfly
        { dst = reg line d; src = reg line s; xor_mask = int_of line n }
  | "bar.arr", [ b; c ] ->
      Isa.Bar_arrive { bar = int_of line b; count = int_of line c }
  | "bar.sync", [ b; c ] ->
      Isa.Bar_sync { bar = int_of line b; count = int_of line c }
  | "bar.cta", [] -> Isa.Bar_cta
  | op, ops -> (
      match fop_of_name op with
      | Some fop -> (
          match ops with
          | d :: srcs when List.length srcs = Isa.fop_arity fop ->
              Isa.Arith
                {
                  op = fop;
                  dst = reg line d;
                  srcs = Array.of_list (List.map (parse_src line) srcs);
                  pred;
                }
          | _ -> fail line "%s: wrong operand count" op)
      | None -> fail line "unknown mnemonic %S" op)

type ptok = { line : int; text : string }

(* Parse a block body until the matching '}'. *)
let rec parse_block toks =
  let instrs = ref [] and blocks = ref [] in
  let flush () =
    if !instrs <> [] then begin
      blocks := Isa.Instrs (List.rev !instrs) :: !blocks;
      instrs := []
    end
  in
  let rec go toks =
    match toks with
    | [] -> fail 0 "unexpected end of input (missing '}')"
    | { text = "}"; _ } :: rest ->
        flush ();
        (Isa.Seq (List.rev !blocks), rest)
    | { line; text } :: rest when String.length text > 3 && String.sub text 0 3 = "if " ->
        flush ();
        let mask_text =
          String.trim (String.sub text 3 (String.length text - 3))
        in
        let mask_text =
          match String.index_opt mask_text '{' with
          | Some i -> String.trim (String.sub mask_text 0 i)
          | None -> fail line "if: expected '{'"
        in
        let mask = int_of line mask_text in
        let body, rest = parse_block rest in
        blocks := Isa.If_warps { mask; body } :: !blocks;
        go rest
    | { text; _ } :: rest when text = "switch {" ->
        flush ();
        let arms = ref [] in
        let rec arms_loop toks =
          match toks with
          | { text = "}"; _ } :: rest -> rest
          | { line; text } :: rest
            when String.length text > 5 && String.sub text 0 5 = "warp " ->
              let body, rest = parse_block rest in
              ignore (int_of line (String.trim (String.sub text 5 (String.length text - 6))));
              arms := body :: !arms;
              arms_loop rest
          | { line; text } :: _ -> fail line "switch: unexpected %S" text
          | [] -> fail 0 "unterminated switch"
        in
        let rest = arms_loop rest in
        blocks := Isa.Switch_warp (Array.of_list (List.rev !arms)) :: !blocks;
        go rest
    | { line; text } :: rest ->
        instrs := parse_instr line text :: !instrs;
        go rest
  in
  go toks

let parse text =
  try
    let lines =
      String.split_on_char '\n' text
      |> List.mapi (fun i l -> { line = i + 1; text = String.trim l })
      |> List.filter (fun t -> t.text <> "" && t.text.[0] <> '#')
    in
    let name = ref "anonymous" in
    let n_warps = ref 0
    and n_fregs = ref 0
    and n_iregs = ref 0
    and shared = ref 0
    and local = ref 0
    and barriers = ref 0 in
    let point_map = ref Isa.Coop in
    let exp_consts = ref false in
    let groups = ref [] in
    let banks = ref [] and params = ref [] in
    let const_mem = ref [||] in
    let prologue = ref (Isa.Seq []) and body = ref (Isa.Seq []) in
    let rec header toks =
      match toks with
      | [] -> ()
      | { line; text } :: rest -> (
          let words =
            String.split_on_char ' ' text |> List.filter (fun s -> s <> "")
          in
          match words with
          | ".program" :: n -> name := String.concat " " n; header rest
          | ".warps" :: w :: ".fregs" :: f :: ".iregs" :: i :: ".shared" :: s
            :: ".local" :: l :: ".barriers" :: b :: [] ->
              n_warps := int_of line w;
              n_fregs := int_of line f;
              n_iregs := int_of line i;
              shared := int_of line s;
              local := int_of line l;
              barriers := int_of line b;
              header rest
          | [ ".pointmap"; "coop" ] -> point_map := Isa.Coop; header rest
          | [ ".pointmap"; "thread" ] ->
              point_map := Isa.Thread_per_point;
              header rest
          | [ ".expconsts"; b ] ->
              exp_consts := bool_of_string b;
              header rest
          | [ ".group"; g; f ] ->
              groups := { Isa.group_name = g; fields = int_of line f } :: !groups;
              header rest
          | ".bank" :: w :: l :: "=" :: vals ->
              let w = int_of line (String.sub w 1 (String.length w - 1)) in
              let l = int_of line (String.sub l 1 (String.length l - 1)) in
              banks :=
                (w, l, Array.of_list (List.map (float_bits_of line) vals))
                :: !banks;
              header rest
          | ".param" :: w :: l :: "=" :: vals ->
              let w = int_of line (String.sub w 1 (String.length w - 1)) in
              let l = int_of line (String.sub l 1 (String.length l - 1)) in
              params := (w, l, Array.of_list (List.map (int_of line) vals)) :: !params;
              header rest
          | ".constmem" :: "=" :: vals ->
              const_mem := Array.of_list (List.map (float_bits_of line) vals);
              header rest
          | [ ".prologue"; "{" ] ->
              let b, rest = parse_block rest in
              prologue := b;
              header rest
          | [ ".body"; "{" ] ->
              let b, rest = parse_block rest in
              body := b;
              header rest
          | _ -> fail line "unrecognized directive %S" text)
    in
    header lines;
    let bank_of entries default_len =
      let slots =
        List.fold_left (fun a (_, _, v) -> max a (Array.length v)) default_len
          entries
      in
      let t =
        Array.init !n_warps (fun _ -> Array.init 32 (fun _ -> Array.make slots 0.0))
      in
      List.iter (fun (w, l, v) -> Array.blit v 0 t.(w).(l) 0 (Array.length v)) entries;
      if slots = 0 then
        Array.init !n_warps (fun _ -> Array.init 32 (fun _ -> [||]))
      else t
    in
    let param_of entries =
      let slots = List.fold_left (fun a (_, _, v) -> max a (Array.length v)) 0 entries in
      let t =
        Array.init !n_warps (fun _ -> Array.init 32 (fun _ -> Array.make slots 0))
      in
      List.iter (fun (w, l, v) -> Array.blit v 0 t.(w).(l) 0 (Array.length v)) entries;
      if slots = 0 then Array.init !n_warps (fun _ -> Array.init 32 (fun _ -> [||]))
      else t
    in
    Ok
      {
        Isa.name = !name;
        n_warps = !n_warps;
        n_fregs = !n_fregs;
        n_iregs = !n_iregs;
        shared_doubles = !shared;
        local_doubles = !local;
        barriers_used = !barriers;
        point_map = !point_map;
        prologue = !prologue;
        body = !body;
        const_bank = bank_of !banks 0;
        param_bank = param_of !params;
        const_mem = !const_mem;
        groups = Array.of_list (List.rev !groups);
        exp_consts_in_registers = !exp_consts;
      }
  with
  | Err (line, msg) -> Error (Printf.sprintf "line %d: %s" line msg)
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg
