(** Instruction- and constant-cache models.

    The instruction cache combines a set-associative line cache with a
    small number of sequential prefetch streams. This reproduces the two
    empirical rules of §5.1: a few concurrent instruction streams of any
    length run at full speed (the prefetcher tracks them), and many short
    divergent regions are fine once resident (capacity), but many {e long}
    divergent paths thrash — the Fig. 9 cliff at six naive warp code
    paths. *)

module Icache : sig
  type t

  type stats = {
    mutable hits : int;
    mutable stream_hits : int;  (** misses absorbed by a prefetch stream *)
    mutable misses : int;  (** full-latency misses *)
    mutable fill_stall_cycles : int;
        (** latency of every fill this cache initiated, counted once per
            fill: warps that join an in-flight fill add nothing (their
            individual waits live in {!Profile} buckets) *)
  }

  val create : Arch.t -> t

  val access : t -> now:int -> line:int -> int
  (** [access t ~now ~line] returns the stall in cycles for fetching the
      given code line: 0 on a resident hit, the remaining fill time when
      the line is still in flight (followers of the missing warp also
      wait), a small catch-up cost when a prefetch stream covers the line,
      the full miss latency otherwise. *)

  val stats : t -> stats
  val line_of_addr : Arch.t -> int -> int

  val max_streams : int
  (** Concurrent sequential streams the prefetcher tracks (the Fig. 9
      cliff: more divergent long paths than this thrash). *)

  val prefetch_fill : int
  (** Catch-up cost, in cycles, of a fetch a prefetch stream covers —
      the effective per-line cost of streaming code. *)
end

module Ccache : sig
  type t

  type stats = {
    mutable hits : int;
    mutable misses : int;
    mutable fill_stall_cycles : int;
        (** latency of every fill, once per initiated fill (see
            {!Icache.stats.fill_stall_cycles}) *)
  }

  val create : Arch.t -> t

  val access : t -> now:int -> slot:int -> int
  (** Stall cycles for reading the given 8-byte constant slot: 0 on a
      resident hit, the remaining fill time while the line is in flight,
      the full global latency on a miss. *)

  val stats : t -> stats
end
