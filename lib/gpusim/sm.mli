(** Cycle-level simulation of one streaming multiprocessor.

    Executes the per-warp traces of every resident CTA under a
    greedy-then-oldest multi-warp scheduler with:
    {ul
    {- a register scoreboard (per-register availability cycles);}
    {- throughput-limited pipes: double-precision (0.5 or 2 warp
       instructions per cycle), ALU/branch/shuffle, load-store, shared
       memory with bank-conflict serialization;}
    {- bandwidth-limited memory paths (texture, global, local/spill), each
       a drain-rate queue plus latency;}
    {- the instruction cache and constant cache of {!Caches};}
    {- 16 named barriers per CTA with arrive/sync semantics and exact
       deadlock detection (a cycle in which every live warp waits on a
       barrier raises {!Simulation_fault}).}}

    Instructions are executed functionally at issue; the scoreboard
    prevents premature reads, so results equal a sequential execution.

    {b Fault containment.} The scheduler never loops forever: a barrier
    deadlock, a no-progress livelock, or an exhausted [max_cycles] budget
    each abort the run with a structured {!Simulation_fault} carrying the
    per-warp positions and the nonzero barrier counters at the moment of
    the fault. *)

type fault_kind =
  | Barrier_deadlock
      (** every live warp waits on a barrier and no stall event is
          pending — the exact-deadlock criterion *)
  | No_progress
      (** the issue loop visited 1M consecutive cycles without issuing a
          single instruction (a livelock that is not a barrier wait) *)
  | Cycle_budget  (** the [max_cycles] watchdog budget ran out *)

type warp_dump = {
  d_cta : int;
  d_wid : int;
  d_state : string;  (** ["ready"], ["stalled"], ["waiting barN"], ... *)
  d_phase : string;  (** ["prologue"], ["body"] or ["done"] *)
  d_pos : int;  (** position in the current phase's trace *)
  d_len : int;  (** length of that trace *)
  d_batch : int;
  d_stall_until : int;
}

type barrier_dump = {
  b_cta : int;
  b_bar : int;  (** named barrier id, or [-1] for the CTA-wide barrier *)
  b_arrived : int;
  b_waiters : int;
}

type fault_report = {
  fault_kind : fault_kind;
  fault_cycle : int;
  detail : string;
  warp_dumps : warp_dump list;  (** one per resident warp *)
  barrier_dumps : barrier_dump list;  (** barriers with nonzero state *)
}

exception Simulation_fault of fault_report
(** Raised by {!run} instead of looping forever; see {!fault_kind}. *)

val fault_kind_name : fault_kind -> string

val pp_fault : Format.formatter -> fault_report -> unit
(** Multi-line rendering: the fault line followed by one line per warp
    and one per barrier with pending state. *)

val fault_to_string : fault_report -> string

type counters = {
  mutable issued : int;
  mutable branch_instrs : int;
  mutable flops : int;  (** per-lane FLOPs, SASS-style counting *)
  mutable dp_warp_instrs : int;
  mutable tex_bytes : int;
  mutable global_bytes : int;
  mutable local_bytes : int;  (** spill traffic *)
  mutable shared_accesses : int;
  mutable bank_conflict_slots : int;
  mutable barrier_stalls : int;  (** warp-cycles blocked on named barriers *)
  mutable cta_barrier_stalls : int;
  mutable icache_stall_cycles : int;
      (** fill latency counted once per initiated i-cache fill (equals
          {!Caches.Icache.stats.fill_stall_cycles}); warps joining an
          in-flight fill do not re-count it — per-warp wait time is in
          {!Profile} buckets *)
  mutable ccache_stall_cycles : int;  (** likewise, for the constant cache *)
}

type profile_spec = {
  timeline_capacity : int;
      (** ring-buffer capacity (in spans) for the Chrome-trace timeline;
          0 keeps buckets and barrier histograms but records no spans *)
}

val default_profile : profile_spec
(** [{ timeline_capacity = 65536 }] *)

type result = {
  cycles : int;
  counters : counters;
  icache : Caches.Icache.stats;
  ccache : Caches.Ccache.stats;
  profile : Profile.t option;  (** present iff {!run} was given [?profile] *)
}

type job = {
  arch : Arch.t;
  program : Isa.program;
  trace : Trace.t;
  mem : Memstate.t;
  resident_ctas : int;
  batches : int;  (** point batches per CTA *)
  cta_point_base : int array;  (** first grid point of each resident CTA *)
}

val run : ?max_cycles:int -> ?profile:profile_spec -> job -> result
(** Simulates until every warp of every resident CTA retires; [job.mem] is
    mutated with the kernel's global stores.

    [max_cycles] is the watchdog budget: if the simulated clock reaches it
    with warps still live, the run aborts with a {!Simulation_fault} of
    kind {!Cycle_budget} (default: unlimited — deadlocks and livelocks are
    still detected without a budget). Raises [Invalid_argument] when the
    budget is not positive.

    [profile] turns on the per-warp cycle-attribution ledger described in
    {!Profile}: the result's [profile] field then holds buckets that sum
    exactly to [cycles] for every warp, per-barrier wait histograms, and
    (when [timeline_capacity > 0]) a span timeline for Chrome trace
    export. Profiling never perturbs the simulation — cycles, counters
    and memory effects are identical with and without it. Raises
    [Invalid_argument] when [timeline_capacity] is negative. *)
