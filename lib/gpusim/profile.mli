(** Per-warp cycle attribution: the data produced by [Sm.run ?profile].

    Each warp carries a tiny ledger — the cycle its current {e span}
    started and the bucket that span accrues into — flushed whenever the
    warp's classification changes. Because every flush advances the span
    origin and issue cycles are credited explicitly, the buckets of one
    warp always sum to the total cycle count exactly:

    {[ forall w.  sum_b buckets.(w).(b) = cycles ]}

    the conservation invariant [test/test_profile.ml] pins for every
    shipped kernel, and which the {!Chip} layer preserves per simulated
    SM round (the profiler rides the main round simulation only).

    This interface is the profiler's public surface; [Sm]'s hot path
    indexes {!t.buckets} through the integer bucket constants below, so
    they are part of the contract, not an implementation detail. *)

(** {1 Bucket taxonomy}

    Buckets are plain ints so the simulator's hot path can index arrays
    without boxing. The taxonomy follows the paper's §6 discussion:
    where does a warp-specialized warp spend its life? *)

val issue : int
(** issuing, or contending for one of the issue slots *)

val arith : int
(** scoreboard wait on an arithmetic producer, DP/ALU port busy *)

val mem : int
(** scoreboard wait on a load, LD/ST or shared port busy *)

val bar_named : int
(** parked on a named barrier (incl. post-release latency) *)

val bar_cta : int
(** parked on the CTA-wide barrier *)

val icache : int
(** instruction-fetch miss or in-flight fill *)

val ccache : int
(** constant-cache miss or in-flight fill *)

val idle : int
(** retired (and the pre-first-visit prologue gap) *)

val n_buckets : int

val bucket_names : string array
(** [n_buckets] display names, indexed by the constants above. *)

(** {1 Per-barrier wait histograms} *)

val hist_buckets : int

val hist_bucket : int -> int
(** Log2 bucket of a wait length: 0 -> 0, otherwise [1 + floor(log2 w)],
    capped at [hist_buckets - 1]; bucket [i >= 1] holds waits in
    [2^(i-1), 2^i). *)

type bar_wait = {
  bw_bar : int;  (** barrier id; -1 encodes the CTA-wide barrier *)
  bw_count : int;  (** completed waits (warp-release events) *)
  bw_total : int;  (** warp-cycles from park to release *)
  bw_max : int;
  bw_hist : int array;  (** [hist_buckets] log2 buckets; sums to bw_count *)
}

(** {1 Timeline} *)

type span = {
  sp_warp : int;
  sp_bucket : int;
  sp_start : int;
  sp_stop : int;  (** exclusive *)
}

type t = {
  cycles : int;
  warps : (int * int) array;  (** warp index -> (cta, wid) *)
  buckets : int array array;  (** [warp index][bucket] warp-cycles *)
  bar_waits : bar_wait list;  (** barriers with at least one completed wait *)
  timeline : span array;  (** chronological by span end; ring-truncated *)
  timeline_dropped : int;  (** spans evicted from the ring, 0 if it held *)
}

val n_warps : t -> int
val total_warp_cycles : t -> int

val bucket_totals : t -> int array
(** Column sums of [buckets]: warp-cycles per bucket across all warps. *)

val conservation_residual : t -> int
(** [sum of all bucket cells - total_warp_cycles]; 0 iff conserved. *)

val conservation_ok : t -> bool

val top_stalls : ?n:int -> t -> (int * int * int) list
(** Largest wait-bucket cells [(warp, bucket, warp-cycles)] (issue and
    idle excluded), descending; ties break on warp then bucket so output
    is deterministic. Default [n = 10]. *)

(** {1 Rendering} *)

val pp_breakdown : Format.formatter -> t -> unit
(** Per-warp table with totals, shares, and the conservation verdict. *)

val pp_bar_waits : Format.formatter -> t -> unit

(** {1 Serialization} *)

val to_chrome_trace : t -> string
(** Chrome trace-event JSON ("X" complete events): one event per span,
    pid = CTA, tid = warp id within the CTA, ts/dur in simulated cycles,
    sorted by start time so consumers see monotone timestamps. *)

val to_json : t -> string
(** The perf-snapshot payload: totals plus the full per-warp breakdown
    (timeline spans are deliberately excluded — they belong in the
    Chrome trace, not a perf time series). *)
