module Icache = struct
  type stats = {
    mutable hits : int;
    mutable stream_hits : int;
    mutable misses : int;
    mutable fill_stall_cycles : int;
        (** Latency of every fill this cache initiated, counted once per
            fill — warps that pile onto an in-flight fill add nothing.
            Per-warp wait time lives in the profiler's buckets. *)
  }

  type t = {
    sets : int array array;  (** [set][way] = line tag, -1 empty *)
    lru : int array array;  (** [set][way] = last-use stamp *)
    ready : int array array;  (** [set][way] = cycle the fill completes *)
    streams : int array;  (** next expected line per stream, -1 idle *)
    stream_lru : int array;
    mutable stamp : int;
    n_sets : int;
    assoc : int;
    miss_latency : int;
    prefetch_cost : int;
    st : stats;
  }

  (* Concurrent sequential streams the front end can track; calibrated so
     that naive warp-specialized code begins thrashing at six divergent
     paths (Fig. 9). *)
  let max_streams = 5

  (* A fetch this many lines ahead of a stream still counts as covered:
     the prefetcher runs ahead, so skipping a short masked block does not
     break the sequence (§5.1: short divergent regions are fine). *)
  let stream_window = 16

  (* Catch-up cost of a stream-covered fetch. *)
  let prefetch_fill = 6

  let create (arch : Arch.t) =
    let line_bytes = arch.Arch.icache_line_instrs * arch.Arch.instr_bytes in
    let lines = arch.Arch.icache_bytes / line_bytes in
    let assoc = arch.Arch.icache_assoc in
    let n_sets = max 1 (lines / assoc) in
    {
      sets = Array.make_matrix n_sets assoc (-1);
      lru = Array.make_matrix n_sets assoc 0;
      ready = Array.make_matrix n_sets assoc 0;
      streams = Array.make max_streams (-1);
      stream_lru = Array.make max_streams 0;
      stamp = 0;
      n_sets;
      assoc;
      miss_latency = arch.Arch.icache_miss_latency;
      prefetch_cost = prefetch_fill;
      st = { hits = 0; stream_hits = 0; misses = 0; fill_stall_cycles = 0 };
    }

  let insert t ~now ~fill line =
    let set = line mod t.n_sets in
    let ways = t.sets.(set) in
    let found = ref false in
    Array.iteri
      (fun w tag ->
        if tag = line then begin
          found := true;
          t.lru.(set).(w) <- t.stamp
        end)
      ways;
    if not !found then begin
      let victim = ref 0 in
      Array.iteri
        (fun w _ -> if t.lru.(set).(w) < t.lru.(set).(!victim) then victim := w)
        ways;
      ways.(!victim) <- line;
      t.lru.(set).(!victim) <- t.stamp;
      t.ready.(set).(!victim) <- now + fill
    end

  (* Residency probe; a line still being filled stalls until ready. *)
  let probe t ~now line =
    let set = line mod t.n_sets in
    let result = ref None in
    Array.iteri
      (fun w tag ->
        if tag = line then begin
          t.lru.(set).(w) <- t.stamp;
          result := Some (max 0 (t.ready.(set).(w) - now))
        end)
      t.sets.(set);
    !result

  let access t ~now ~line =
    t.stamp <- t.stamp + 1;
    match probe t ~now line with
    | Some wait ->
        t.st.hits <- t.st.hits + 1;
        wait
    | None ->
        (* Does a prefetch stream cover this line (within its run-ahead
           window)? *)
        let stream = ref (-1) in
        Array.iteri
          (fun s next ->
            if next >= 0 && line >= next && line < next + stream_window then
              stream := s)
          t.streams;
        if !stream >= 0 then begin
          let s = !stream in
          t.streams.(s) <- line + 1;
          t.stream_lru.(s) <- t.stamp;
          insert t ~now ~fill:t.prefetch_cost line;
          t.st.stream_hits <- t.st.stream_hits + 1;
          t.st.fill_stall_cycles <- t.st.fill_stall_cycles + t.prefetch_cost;
          t.prefetch_cost
        end
        else begin
          (* Full miss: allocate (or steal) a stream for the new
             sequence. *)
          let victim = ref 0 in
          Array.iteri
            (fun s _ ->
              if t.stream_lru.(s) < t.stream_lru.(!victim) then victim := s)
            t.streams;
          t.streams.(!victim) <- line + 1;
          t.stream_lru.(!victim) <- t.stamp;
          insert t ~now ~fill:t.miss_latency line;
          t.st.misses <- t.st.misses + 1;
          t.st.fill_stall_cycles <- t.st.fill_stall_cycles + t.miss_latency;
          t.miss_latency
        end

  let stats t = t.st

  let line_of_addr (arch : Arch.t) addr =
    addr / (arch.Arch.icache_line_instrs * arch.Arch.instr_bytes)
end

module Ccache = struct
  type stats = {
    mutable hits : int;
    mutable misses : int;
    mutable fill_stall_cycles : int;
        (** Latency of every fill, once per initiated fill (see
            {!Icache.stats.fill_stall_cycles}). *)
  }

  type t = {
    lines : int array;
    lru : int array;
    ready : int array;
    mutable stamp : int;
    slots_per_line : int;
    miss_latency : int;
    st : stats;
  }

  let create (arch : Arch.t) =
    let n_lines = arch.Arch.const_cache_bytes / arch.Arch.const_line_bytes in
    {
      lines = Array.make n_lines (-1);
      lru = Array.make n_lines 0;
      ready = Array.make n_lines 0;
      stamp = 0;
      slots_per_line = arch.Arch.const_line_bytes / 8;
      miss_latency = arch.Arch.global_latency;
      st = { hits = 0; misses = 0; fill_stall_cycles = 0 };
    }

  let access t ~now ~slot =
    t.stamp <- t.stamp + 1;
    let line = slot / t.slots_per_line in
    let hit = ref (-1) in
    Array.iteri
      (fun i tag ->
        if tag = line then begin
          hit := i;
          t.lru.(i) <- t.stamp
        end)
      t.lines;
    if !hit >= 0 then begin
      t.st.hits <- t.st.hits + 1;
      (* A line still in flight stalls followers until the fill lands. *)
      max 0 (t.ready.(!hit) - now)
    end
    else begin
      let victim = ref 0 in
      Array.iteri
        (fun i _ -> if t.lru.(i) < t.lru.(!victim) then victim := i)
        t.lines;
      t.lines.(!victim) <- line;
      t.lru.(!victim) <- t.stamp;
      t.ready.(!victim) <- now + t.miss_latency;
      t.st.misses <- t.st.misses + 1;
      t.st.fill_stall_cycles <- t.st.fill_stall_cycles + t.miss_latency;
      t.miss_latency
    end

  let stats t = t.st
end
