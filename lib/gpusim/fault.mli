(** Deterministic trace-level fault injection.

    The containment story of this repository is only credible if the
    detectors can be shown to fire: these faults corrupt a flattened
    {!Trace.t} in precisely controlled ways — a dropped barrier arrival,
    a barrier op retargeted to the wrong id, a duplicated arrival, a
    latency perturbation — so tests and the CLI can demonstrate that an
    injected hang terminates in a structured {!Sm.Simulation_fault} and
    that functional corruption is caught by the output check.

    Stream positions ([nth]) count the targeted warp's matching
    instructions over its prologue followed by one body batch, in trace
    order, starting at 0. *)

type t =
  | Drop_arrive of { warp : int; nth : int }
      (** delete the warp's [nth] named-barrier arrival: its consumer
          waits forever — the canonical injected deadlock *)
  | Swap_barrier of { warp : int; nth : int; bar : int }
      (** retarget the warp's [nth] named-barrier op (arrive or sync) to
          id [bar]: starves the original barrier and may prematurely
          release [bar]'s waiters *)
  | Extra_arrive of { warp : int; nth : int }
      (** duplicate the warp's [nth] arrival — a premature release that
          typically surfaces as corrupted outputs or a later deadlock *)
  | Latency of { warp : int; mult : int }
      (** multiply the arithmetic latency of every arith instruction the
          warp issues by [mult] (schedule perturbation; must stay
          functionally correct — barrier schedules are order-independent) *)
  | Corrupt_shfl of { warp : int; nth : int }
      (** perturb the lane selector of the warp's [nth] shuffle
          instruction ([Shfl]/[Ishfl] broadcasts read the next lane over,
          [Shfl_rot] rotates one lane further, [Shfl_bfly] flips the low
          mask bit): silent data-movement corruption across the PR 7
          synthesized-exchange instructions, caught by the functional
          output check rather than the deadlock detectors *)

val to_string : t -> string
(** Round-trips with {!of_string}: e.g. ["drop-arrive:warp=1,nth=0"]. *)

val of_string : string -> (t, string) result
(** Parse a [--fault] specification, [KIND:key=value,...] with kinds
    [drop-arrive], [swap-bar], [extra-arrive], [latency],
    [corrupt-shfl]. Strict: every
    expected field exactly once, values plain decimal naturals; unknown
    or duplicate fields, trailing garbage and non-decimal values are
    [Error] rather than silently ignored. [to_string] output always
    parses back to the same fault. *)

val describe : t -> string
(** Human-oriented one-line description. *)

val apply : ?named_barriers:int -> t list -> Trace.t -> Trace.t
(** Apply the faults left to right, returning a fresh trace (unmodified
    entries are shared). Raises [Invalid_argument] when a fault matches
    nothing — the targeted warp is out of range, has fewer than [nth + 1]
    matching instructions (barrier ops, or shuffles for
    [Corrupt_shfl]), or issues no arithmetic for [Latency] — or,
    when [named_barriers] is given, when a [Swap_barrier] id falls
    outside [\[0, named_barriers)] (instead of silently indexing past
    the SM's barrier file). {!Machine.run} always passes the
    architecture's count. *)
