(** Full-chip kernel launches: N per-SM simulations under a chip-level
    scheduler.

    The single-SM event-heap core ({!Sm.run}) is reused unchanged as the
    per-SM engine. This layer adds what the old wave arithmetic could
    not express:

    - a {b CTA dispatcher}: greedy, deterministic and seed-stable — a
      draining SM pulls the next [resident] CTAs (ties resolve to the
      lowest SM id), so partial tail waves and dispatch imbalance are
      simulated rather than averaged away;
    - a {b shared L2/DRAM arbiter}: when the summed streaming demand of
      the active SMs exceeds [Arch.dram_gbs_peak], every SM's progress
      is stretched by a common throttle factor (spill traffic whose
      aggregate working set fits in [Arch.l2_bytes] is served by L2 and
      exempt);
    - {b per-SM clock skew}: [Arch.sm_clock_skew] (or the [?skew]
      override) ramps per-SM clock factors linearly over
      [1 - s/2 .. 1 + s/2].

    Because every SM executes identical code on identically-shaped data
    (simulated cycles and counters never depend on float memory
    contents), only the distinct round shapes are simulated
    cycle-accurately — a full round of [resident] CTAs and, when the
    grid does not divide evenly, one genuine tail round of
    [ctas mod resident] CTAs — and the scheduler replays those shapes
    across SMs. The profiler rides the main round simulation, so its
    exact cycle conservation per simulated SM is preserved. *)

type launch = {
  program : Isa.program;
  total_points : int;  (** logical problem size, e.g. 128^3 *)
  ctas : int;  (** CTAs in the launch grid *)
}

type occupancy = {
  resident_ctas : int;
  limited_by : string;  (** which resource capped residency *)
  warps_per_sm : int;
}

(** Structured occupancy rejection: why a program cannot be resident at
    all. Replaces the old [Failure] strings so the CLI can map
    rejections onto its compile-rejection exit code. *)
type reject_kind =
  | Regs_per_thread of { regs32 : int; limit : int }
      (** per-thread register demand above the hardware maximum — the
          spilling warning of §4.1 should have fired instead *)
  | Does_not_fit of { limited_by : string }
      (** zero CTAs fit; [limited_by] names the exhausted resource *)

type reject = { program : string; arch : string; kind : reject_kind }

exception Occupancy_rejected of reject

val reject_message : reject -> string
(** Human-readable one-line rendering (also installed as the
    [Printexc] printer for {!Occupancy_rejected}). *)

val occupancy : Arch.t -> Isa.program -> occupancy
(** Raises {!Occupancy_rejected} if even a single CTA does not fit. *)

val points_per_cta : launch -> int

val batches_per_cta : launch -> int
(** [Coop] kernels: 32 points per batch; [Thread_per_point]: n_warps*32. *)

(** {1 Chip-level scheduler} *)

type sm_stat = {
  sm_ctas : int;  (** CTAs this SM executed *)
  sm_rounds : int;  (** dispatch rounds this SM executed *)
  sm_finish : float;  (** reference cycle at which this SM drained *)
  sm_busy : float;  (** reference cycles this SM had work *)
}

type contention = {
  dram_peak_bpc : float;  (** DRAM budget, bytes per reference cycle *)
  demand_peak_bpc : float;  (** peak instantaneous aggregate demand *)
  throttle_max : float;  (** worst stretch factor applied (>= 1.0) *)
  dram_util : float;  (** delivered DRAM bytes / (makespan * peak) *)
  spill_in_l2 : bool;
      (** the aggregate spill working set fit in L2, exempting local
          traffic from the DRAM budget *)
}

type schedule = {
  sms : sm_stat array;
  contention : contention;
  makespan_cycles : float;  (** reference cycles until the last SM drains *)
  tail_ctas : int;  (** [ctas mod resident], 0 when the grid divides *)
  rounds_total : int;
  n_sms : int;
  skew : float;
}

val clock_factor : n_sms:int -> skew:float -> int -> float
(** Per-SM clock multiplier: a linear ramp over [1 - s/2 .. 1 + s/2]
    (1.0 everywhere when [skew = 0] or [n_sms = 1]). *)

val schedule :
  n_sms:int ->
  skew:float ->
  resident:int ->
  ctas:int ->
  round_cycles:(int -> float) ->
  round_dram_bytes:(int -> float) ->
  dram_peak_bpc:float ->
  spill_in_l2:bool ->
  schedule
(** Pure fluid simulation of the dispatcher + arbiter; deterministic in
    its arguments (no randomness, no parallelism). [round_cycles k] and
    [round_dram_bytes k] give the nominal cost and DRAM traffic of one
    round of [k] resident CTAs; they are only consulted for
    [k = resident] and [k = ctas mod resident]. Also the analytic
    mirror used by [Perf_model], which supplies model-derived round
    costs instead of simulated ones. *)

val cycle_spread : schedule -> float
(** Max minus min [sm_finish] over SMs that received work. *)

val dispatch_imbalance : schedule -> float
(** [max sm_ctas / mean sm_ctas - 1] over all scheduled SMs (0 =
    perfectly balanced). *)

(** {1 Whole-launch simulation} *)

type result = {
  occ : occupancy;
  waves : float;  (** legacy wave count, informational only *)
  sm_cycles : int;  (** simulated cycles for one full SM-round *)
  time_s : float;  (** whole-launch wall time (scheduler makespan) *)
  points_per_sec : float;
  gflops : float;  (** SASS-style DP GFLOPS actually sustained *)
  dram_gbs : float;  (** tex+global+local traffic *)
  local_gbs : float;  (** spill traffic alone *)
  sim : Sm.result;  (** the full-round simulation *)
  tail_sim : Sm.result option;  (** the tail-round simulation, if any *)
  mem : Memstate.t;  (** post-run memory (outputs of the simulated CTAs) *)
  simulated_points : int;  (** grid points with valid outputs in [mem] *)
  chip : schedule;  (** dispatcher/arbiter outcome *)
}

val run :
  ?fill_inputs:(Memstate.t -> int -> unit) ->
  ?max_sim_batches:int ->
  ?faults:Fault.t list ->
  ?max_cycles:int ->
  ?profile:Sm.profile_spec ->
  ?n_sms:int ->
  ?skew:float ->
  Arch.t ->
  launch ->
  result
(** Same contract as the old [Machine.run] for the per-SM core:
    [fill_inputs mem n_points] is called exactly once, for the main
    simulation; every secondary run (pin runs and the tail round)
    reuses a prefix of that data via {!Memstate.copy_global_prefix}.
    Launches streaming more than [max_sim_batches] batches per CTA
    (default 6, clamped to at least 2) are extrapolated from two runs
    one batch apart: their difference is exactly one steady-state body
    batch, so once the per-batch cost has settled the extrapolation
    reproduces a full simulation exactly (the tail round gets its own
    pin pair).

    [n_sms] (default [arch.n_sms]) and [skew] (default
    [arch.sm_clock_skew]) control the chip the scheduler sees. With
    [n_sms = 1] and zero skew the full-round cycles and counters are
    bit-identical to a single-SM run: the same {!Sm.run} calls execute
    on the same inputs, and the scheduler reduces to one round after
    another on SM 0.

    [faults], [max_cycles] and [profile] behave as before ([profile]
    rides the main simulation only). May raise {!Occupancy_rejected} or
    {!Sm.Simulation_fault}. *)
