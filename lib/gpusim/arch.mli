(** GPU architecture descriptors.

    Parameters for the two machines of the paper's evaluation (§6): an
    NVIDIA Tesla C2070 (Fermi) and a Tesla K20c (Kepler). Clocks, SM
    counts, and capacity limits are the published values; pipeline and
    memory-path parameters are calibrated so the simulator reproduces the
    first-order numbers the paper reports (≈300 GFLOPS practical DP peak on
    Fermi, ≈1173 theoretical on Kepler, 85-100 GB/s local-memory spill
    bandwidth, 30-cycle shared-memory latency, 16 named barriers per SM). *)

type broadcast_style =
  | Shared_mirror  (** Fermi: write to a shared-memory mirror, lanes read (Listing 2) *)
  | Shuffle  (** Kepler: two 32-bit shuffles reassemble the double (Listing 3) *)

type t = {
  name : string;
  n_sms : int;
  clock_mhz : float;  (** SM clock *)
  (* capacity limits *)
  regfile_per_sm : int;  (** 32-bit registers per SM *)
  max_regs_per_thread : int;  (** 32-bit registers *)
  shared_bytes_per_sm : int;
  max_warps_per_sm : int;
  max_ctas_per_sm : int;
  named_barriers_per_sm : int;  (** 16 on both Fermi and Kepler *)
  (* issue model *)
  schedulers : int;  (** warp instructions issued per cycle, any pipe *)
  dp_issue_per_cycle : float;
      (** DP warp-instructions per cycle: 0.5 on Fermi (one per two
          cycles), 2.0 on Kepler (one per quad per two cycles, 4 quads) *)
  const_operand_penalty : float;
      (** multiplier on DP pipe occupancy when a DFMA's operand streams
          from the constant cache (the Kepler effect of §6.1) *)
  alu_issue_per_cycle : float;  (** integer/branch/logic pipe *)
  (* latencies, in SM cycles *)
  arith_latency : int;
  shared_latency : int;  (** ≈30 (§6.3) *)
  global_latency : int;
  icache_miss_latency : int;
  (* memory paths: bandwidth in bytes per SM-cycle per SM *)
  tex_bytes_per_cycle : float;  (** texture/LDG read path *)
  global_bytes_per_cycle : float;  (** plain global loads/stores *)
  local_bytes_per_cycle : float;
      (** register-spill (local memory) path through the L1 — the
          85-100 GB/s the paper measured *)
  (* shared memory *)
  shared_banks : int;
  shared_issue_per_cycle : float;  (** warp shared accesses per cycle *)
  (* caches *)
  const_cache_bytes : int;  (** 8 KB *)
  const_line_bytes : int;
  icache_bytes : int;
  icache_line_instrs : int;  (** instructions per line *)
  icache_assoc : int;
  instr_bytes : int;  (** static code footprint per instruction *)
  (* code generation *)
  broadcast : broadcast_style;
  has_ldg : bool;  (** texture loads for global reads *)
  shared_operand_collector : bool;
      (** arithmetic reads shared operands through the operand collector
          (Fermi), costing latency but no LD/ST issue slot *)
  (* chip-level memory system (the Chip layer's shared-resource model) *)
  l2_bytes : int;
      (** L2 capacity: 768 KB on Fermi, 1.5 MB on Kepler. Per-SM spill
          working sets that fit collectively in L2 are served without
          touching DRAM in the chip-level arbiter. *)
  dram_gbs_peak : float;
      (** aggregate DRAM bandwidth shared by all SMs, in GB/s — the
          ceiling the chip-level arbiter enforces when summed per-SM
          streaming demand exceeds it *)
  sm_clock_skew : float;
      (** relative clock spread across SMs (0.0 = all SMs identical).
          A skew [s] ramps per-SM clock factors linearly over
          [1 - s/2 .. 1 + s/2]; models boot-time binning/boost variance. *)
}

val fermi_c2070 : t
val kepler_k20c : t

val by_name : string -> t option
(** ["fermi"] or ["kepler"] (case-insensitive). *)

val peak_dp_gflops : t -> float
(** Theoretical DP peak: [dp_issue_per_cycle * 64 flops * clock * SMs]
    (513 for the C2070, 1173 for the K20c). *)

val bw_gbs : t -> float -> float
(** Convert a bytes-per-SM-cycle figure to aggregate GB/s. *)

val icache_line_bytes : t -> int
(** Instruction-cache line size in bytes
    ([icache_line_instrs * instr_bytes]). *)

val dram_bytes_per_chip_cycle : t -> float
(** [dram_gbs_peak] expressed in bytes per reference SM clock — the
    chip-wide budget the Chip arbiter divides among active SMs. *)

val pp : Format.formatter -> t -> unit
