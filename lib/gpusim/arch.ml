type broadcast_style = Shared_mirror | Shuffle

type t = {
  name : string;
  n_sms : int;
  clock_mhz : float;
  regfile_per_sm : int;
  max_regs_per_thread : int;
  shared_bytes_per_sm : int;
  max_warps_per_sm : int;
  max_ctas_per_sm : int;
  named_barriers_per_sm : int;
  schedulers : int;
  dp_issue_per_cycle : float;
  const_operand_penalty : float;
  alu_issue_per_cycle : float;
  arith_latency : int;
  shared_latency : int;
  global_latency : int;
  icache_miss_latency : int;
  tex_bytes_per_cycle : float;
  global_bytes_per_cycle : float;
  local_bytes_per_cycle : float;
  shared_banks : int;
  shared_issue_per_cycle : float;
  const_cache_bytes : int;
  const_line_bytes : int;
  icache_bytes : int;
  icache_line_instrs : int;
  icache_assoc : int;
  instr_bytes : int;
  broadcast : broadcast_style;
  has_ldg : bool;
  shared_operand_collector : bool;
  l2_bytes : int;
  dram_gbs_peak : float;
  sm_clock_skew : float;
}

(* Bytes per SM-cycle for an aggregate bandwidth in GB/s. *)
let per_sm_cycle ~gbs ~sms ~mhz = gbs *. 1e9 /. (float_of_int sms *. mhz *. 1e6)

let fermi_c2070 =
  let sms = 14 and mhz = 1147.0 in
  {
    name = "Fermi C2070";
    n_sms = sms;
    clock_mhz = mhz;
    regfile_per_sm = 32768;
    max_regs_per_thread = 64;
    shared_bytes_per_sm = 49152;
    max_warps_per_sm = 48;
    max_ctas_per_sm = 8;
    named_barriers_per_sm = 16;
    schedulers = 2;
    dp_issue_per_cycle = 0.5;
    const_operand_penalty = 1.0;
    alu_issue_per_cycle = 2.0;
    arith_latency = 18;
    shared_latency = 30;
    global_latency = 500;
    icache_miss_latency = 120;
    tex_bytes_per_cycle = per_sm_cycle ~gbs:144.0 ~sms ~mhz;
    global_bytes_per_cycle = per_sm_cycle ~gbs:144.0 ~sms ~mhz;
    local_bytes_per_cycle = per_sm_cycle ~gbs:88.0 ~sms ~mhz;
    shared_banks = 32;
    shared_issue_per_cycle = 1.0;
    const_cache_bytes = 8192;
    const_line_bytes = 64;
    icache_bytes = 8192;
    icache_line_instrs = 8;
    icache_assoc = 4;
    instr_bytes = 8;
    broadcast = Shared_mirror;
    has_ldg = false;
    (* Fermi arithmetic reads shared-memory operands through the operand
       collector, without a separate LD/ST issue slot. *)
    shared_operand_collector = true;
    l2_bytes = 786432;
    dram_gbs_peak = 144.0;
    sm_clock_skew = 0.0;
  }

let kepler_k20c =
  let sms = 13 and mhz = 705.0 in
  {
    name = "Kepler K20c";
    n_sms = sms;
    clock_mhz = mhz;
    regfile_per_sm = 65536;
    max_regs_per_thread = 255;
    shared_bytes_per_sm = 49152;
    max_warps_per_sm = 64;
    max_ctas_per_sm = 16;
    named_barriers_per_sm = 16;
    schedulers = 4;
    dp_issue_per_cycle = 2.0;
    const_operand_penalty = 1.35;
    alu_issue_per_cycle = 4.0;
    arith_latency = 10;
    shared_latency = 30;
    global_latency = 440;
    icache_miss_latency = 120;
    tex_bytes_per_cycle = per_sm_cycle ~gbs:165.0 ~sms ~mhz;
    global_bytes_per_cycle = per_sm_cycle ~gbs:190.0 ~sms ~mhz;
    local_bytes_per_cycle = per_sm_cycle ~gbs:100.0 ~sms ~mhz;
    shared_banks = 32;
    shared_issue_per_cycle = 1.0;
    const_cache_bytes = 8192;
    const_line_bytes = 64;
    icache_bytes = 8192;
    icache_line_instrs = 8;
    icache_assoc = 4;
    instr_bytes = 8;
    broadcast = Shuffle;
    has_ldg = true;
    shared_operand_collector = false;
    l2_bytes = 1572864;
    dram_gbs_peak = 208.0;
    sm_clock_skew = 0.0;
  }

let by_name s =
  match String.lowercase_ascii s with
  | "fermi" | "c2070" | "fermi_c2070" -> Some fermi_c2070
  | "kepler" | "k20c" | "kepler_k20c" -> Some kepler_k20c
  | _ -> None

let peak_dp_gflops t =
  t.dp_issue_per_cycle *. 64.0 *. t.clock_mhz *. 1e6 *. float_of_int t.n_sms
  /. 1e9

let bw_gbs t bytes_per_cycle =
  bytes_per_cycle *. float_of_int t.n_sms *. t.clock_mhz *. 1e6 /. 1e9

let icache_line_bytes t = t.icache_line_instrs * t.instr_bytes

let dram_bytes_per_chip_cycle t =
  t.dram_gbs_peak *. 1e9 /. (t.clock_mhz *. 1e6)

let pp ppf t =
  Format.fprintf ppf "%s: %d SMs @ %.0f MHz, peak %.0f DP GFLOPS" t.name
    t.n_sms t.clock_mhz (peak_dp_gflops t)
