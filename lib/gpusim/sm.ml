(* A fault is any terminal no-good state of the simulation: a barrier
   deadlock (every live warp parked with nothing pending), a no-progress
   livelock (the issue loop spins without retiring work) or an exhausted
   cycle budget. All three raise [Simulation_fault] with a structured
   snapshot of the machine instead of a bare string, so drivers can
   render per-warp positions and barrier counters and sweeps can record
   the failure without parsing messages. *)

type fault_kind = Barrier_deadlock | No_progress | Cycle_budget

type warp_dump = {
  d_cta : int;
  d_wid : int;
  d_state : string;
  d_phase : string;
  d_pos : int;
  d_len : int;
  d_batch : int;
  d_stall_until : int;
}

type barrier_dump = {
  b_cta : int;
  b_bar : int;  (* -1 encodes the CTA-wide barrier *)
  b_arrived : int;
  b_waiters : int;
}

type fault_report = {
  fault_kind : fault_kind;
  fault_cycle : int;
  detail : string;
  warp_dumps : warp_dump list;
  barrier_dumps : barrier_dump list;
}

exception Simulation_fault of fault_report

let fault_kind_name = function
  | Barrier_deadlock -> "barrier deadlock"
  | No_progress -> "no progress"
  | Cycle_budget -> "cycle budget exceeded"

let pp_fault ppf r =
  Format.fprintf ppf "simulation fault: %s at cycle %d — %s"
    (fault_kind_name r.fault_kind)
    r.fault_cycle r.detail;
  List.iter
    (fun d ->
      Format.fprintf ppf "@\n  cta %d warp %d: %s, %s pos %d/%d, batch %d"
        d.d_cta d.d_wid d.d_state d.d_phase d.d_pos d.d_len d.d_batch;
      if d.d_state = "stalled" then
        Format.fprintf ppf ", wakes at %d" d.d_stall_until)
    r.warp_dumps;
  List.iter
    (fun b ->
      Format.fprintf ppf "@\n  %s barrier, cta %d: arrived=%d waiters=%d"
        (if b.b_bar < 0 then "CTA-wide"
         else Printf.sprintf "named %d" b.b_bar)
        b.b_cta b.b_arrived b.b_waiters)
    r.barrier_dumps

let fault_to_string r = Format.asprintf "%a" pp_fault r

type counters = {
  mutable issued : int;
  mutable branch_instrs : int;
  mutable flops : int;
  mutable dp_warp_instrs : int;
  mutable tex_bytes : int;
  mutable global_bytes : int;
  mutable local_bytes : int;
  mutable shared_accesses : int;
  mutable bank_conflict_slots : int;
  mutable barrier_stalls : int;
  mutable cta_barrier_stalls : int;
  mutable icache_stall_cycles : int;
      (** fill latency counted once per initiated i-cache fill (mirrors
          {!Caches.Icache.stats.fill_stall_cycles}); warps piling onto an
          in-flight fill no longer re-count it — per-warp wait time is in
          the profiler's buckets *)
  mutable ccache_stall_cycles : int;  (** likewise, for the constant cache *)
}

(* Profiling is opt-in: [run ~profile] keeps the per-warp cycle ledger
   described in {!Profile}. It does not perturb the simulation — cycles
   and counters are identical with and without it. *)
type profile_spec = {
  timeline_capacity : int;
      (** ring-buffer capacity (in spans) for the Chrome-trace timeline;
          0 keeps buckets and barrier histograms but records no spans *)
}

let default_profile = { timeline_capacity = 65536 }

type result = {
  cycles : int;
  counters : counters;
  icache : Caches.Icache.stats;
  ccache : Caches.Ccache.stats;
  profile : Profile.t option;  (** present iff [run] was given [?profile] *)
}

type job = {
  arch : Arch.t;
  program : Isa.program;
  trace : Trace.t;
  mem : Memstate.t;
  resident_ctas : int;
  batches : int;
  cta_point_base : int array;
}

type wstate = Ready | Stalled | Waiting_bar of int | Waiting_cta | Retired

type warp = {
  cta : int;
  wid : int;
  index : int;  (** position in the warp array *)
  cur : Trace.cursor;
  fregs : float array array;
  iregs : int array array;
  freg_ready : int array;
  ireg_ready : int array;
  mutable st : wstate;
  mutable stall_until : int;
  mutable wait_since : int;
  mutable paid_fetch : int;
      (** entry whose icache miss was already paid: the fill is delivered
          to this warp's fetch even if the line is evicted meanwhile *)
  mutable paid_const : int;  (** likewise for a constant-cache stall *)
}

(* Waiters are warp indices in a preallocated array (capacity: every warp
   of the CTA), so a barrier release conses nothing on the hot path. *)
type barrier = {
  mutable arrived : int;
  waiters : int array;
  mutable n_waiters : int;
}

type pipe = { mutable busy : float; rate : float }

type path = { mutable drain : float; bytes_per_cycle : float }

let fresh_counters () =
  {
    issued = 0;
    branch_instrs = 0;
    flops = 0;
    dp_warp_instrs = 0;
    tex_bytes = 0;
    global_bytes = 0;
    local_bytes = 0;
    shared_accesses = 0;
    bank_conflict_slots = 0;
    barrier_stalls = 0;
    cta_barrier_stalls = 0;
    icache_stall_cycles = 0;
    ccache_stall_cycles = 0;
  }

let active_lanes = function
  | Some (Isa.Lane_eq _) -> 1
  | Some (Isa.Lane_lt n) -> n
  | None -> 32

let lane_active pred lane =
  match pred with
  | None -> true
  | Some (Isa.Lane_eq k) -> lane = k
  | Some (Isa.Lane_lt k) -> lane < k

(* Index of the lowest set bit of a non-zero 32-bit word. *)
let lowest_bit_index m =
  let m = m land -m in
  let i = ref 0 in
  let m = ref m in
  if !m land 0xFFFF = 0 then begin i := 16; m := !m lsr 16 end;
  if !m land 0xFF = 0 then begin i := !i + 8; m := !m lsr 8 end;
  if !m land 0xF = 0 then begin i := !i + 4; m := !m lsr 4 end;
  if !m land 0x3 = 0 then begin i := !i + 2; m := !m lsr 2 end;
  if !m land 0x1 = 0 then incr i;
  !i

let run ?max_cycles ?profile (job : job) =
  let budget =
    match max_cycles with
    | None -> max_int
    | Some b ->
        if b <= 0 then invalid_arg "Sm.run: max_cycles must be positive";
        b
  in
  let arch = job.arch and p = job.program in
  let tr = job.trace and mem = job.mem in
  let n_warps_total = job.resident_ctas * p.Isa.n_warps in
  let warps =
    Array.init n_warps_total (fun i ->
        {
          cta = i / p.Isa.n_warps;
          wid = i mod p.Isa.n_warps;
          index = i;
          cur = Trace.cursor ();
          fregs = Array.init (max 1 p.Isa.n_fregs) (fun _ -> Array.make 32 0.0);
          iregs = Array.init (max 1 p.Isa.n_iregs) (fun _ -> Array.make 32 0);
          freg_ready = Array.make (max 1 p.Isa.n_fregs) 0;
          ireg_ready = Array.make (max 1 p.Isa.n_iregs) 0;
          st = Ready;
          stall_until = 0;
          wait_since = 0;
          paid_fetch = -1;
          paid_const = -1;
        })
  in
  let fresh_barrier () =
    { arrived = 0; waiters = Array.make (max 1 p.Isa.n_warps) (-1); n_waiters = 0 }
  in
  let bars =
    Array.init job.resident_ctas (fun _ ->
        Array.init arch.Arch.named_barriers_per_sm (fun _ -> fresh_barrier ()))
  in
  let cta_bars = Array.init job.resident_ctas (fun _ -> fresh_barrier ()) in
  let dp = { busy = 0.0; rate = arch.Arch.dp_issue_per_cycle } in
  let alu = { busy = 0.0; rate = arch.Arch.alu_issue_per_cycle } in
  let lsu = { busy = 0.0; rate = 1.0 } in
  let shared_pipe = { busy = 0.0; rate = arch.Arch.shared_issue_per_cycle } in
  let tex = { drain = 0.0; bytes_per_cycle = arch.Arch.tex_bytes_per_cycle } in
  let globalp = { drain = 0.0; bytes_per_cycle = arch.Arch.global_bytes_per_cycle } in
  let localp = { drain = 0.0; bytes_per_cycle = arch.Arch.local_bytes_per_cycle } in
  let icache = Caches.Icache.create arch in
  let ccache = Caches.Ccache.create arch in
  let c = fresh_counters () in
  let now = ref 0 in
  let live = ref n_warps_total in
  (* Snapshot the machine and abort with a structured report. *)
  let fault kind detail =
    let warp_dumps =
      Array.to_list
        (Array.map
           (fun w ->
             let phase, len =
               match w.cur.Trace.phase with
               | 0 -> ("prologue", Array.length tr.Trace.prologue.(w.wid))
               | 1 -> ("body", Array.length tr.Trace.body.(w.wid))
               | _ -> ("done", Array.length tr.Trace.body.(w.wid))
             in
             {
               d_cta = w.cta;
               d_wid = w.wid;
               d_state =
                 (match w.st with
                 | Ready -> "ready"
                 | Stalled -> "stalled"
                 | Waiting_bar b -> Printf.sprintf "waiting bar%d" b
                 | Waiting_cta -> "waiting cta-barrier"
                 | Retired -> "retired");
               d_phase = phase;
               d_pos = w.cur.Trace.pos;
               d_len = len;
               d_batch = w.cur.Trace.batch;
               d_stall_until = w.stall_until;
             })
           warps)
    in
    let barrier_dumps = ref [] in
    for cta = job.resident_ctas - 1 downto 0 do
      for bar = Array.length bars.(cta) - 1 downto 0 do
        let b = bars.(cta).(bar) in
        if b.arrived > 0 || b.n_waiters > 0 then
          barrier_dumps :=
            {
              b_cta = cta;
              b_bar = bar;
              b_arrived = b.arrived;
              b_waiters = b.n_waiters;
            }
            :: !barrier_dumps
      done;
      let b = cta_bars.(cta) in
      if b.arrived > 0 || b.n_waiters > 0 then
        barrier_dumps :=
          {
            b_cta = cta;
            b_bar = -1;
            b_arrived = b.arrived;
            b_waiters = b.n_waiters;
          }
          :: !barrier_dumps
    done;
    raise
      (Simulation_fault
         {
           fault_kind = kind;
           fault_cycle = !now;
           detail;
           warp_dumps;
           barrier_dumps = !barrier_dumps;
         })
  in
  (* --- ready set: one bit per warp, iterated in circular index order --- *)
  let n_words = (n_warps_total + 31) / 32 in
  let ready_bits = Array.make (max 1 n_words) 0 in
  let ready_count = ref 0 in
  let set_ready i =
    let wd = i lsr 5 in
    let m = 1 lsl (i land 31) in
    if ready_bits.(wd) land m = 0 then begin
      ready_bits.(wd) <- ready_bits.(wd) lor m;
      incr ready_count
    end
  in
  let clear_ready i =
    let wd = i lsr 5 in
    let m = 1 lsl (i land 31) in
    if ready_bits.(wd) land m <> 0 then begin
      ready_bits.(wd) <- ready_bits.(wd) land lnot m;
      decr ready_count
    end
  in
  (* Smallest ready warp index at or circularly after [pos]; -1 if none. *)
  let next_ready pos =
    if !ready_count = 0 then -1
    else begin
      let wd0 = pos lsr 5 and b0 = pos land 31 in
      let m0 = ready_bits.(wd0) land ((-1) lsl b0) in
      if m0 <> 0 then (wd0 lsl 5) + lowest_bit_index m0
      else begin
        let res = ref (-1) in
        let step = ref 1 in
        while !res < 0 && !step <= n_words do
          let wi =
            let wi = wd0 + !step in
            if wi >= n_words then wi - n_words else wi
          in
          let m =
            if !step = n_words then ready_bits.(wd0) land ((1 lsl b0) - 1)
            else ready_bits.(wi)
          in
          if m <> 0 then res := (wi lsl 5) + lowest_bit_index m;
          incr step
        done;
        !res
      end
    end
  in
  Array.iter (fun w -> set_ready w.index) warps;
  (* --- optional per-warp cycle-attribution ledger (see Profile) ---
     Each warp carries the start cycle and bucket of its current span;
     spans flush whenever the warp's classification changes, so per-warp
     buckets sum to the final cycle count exactly (the conservation
     invariant). Every hook is a no-op when profiling is off. *)
  let prof_on = profile <> None in
  let pb =
    if prof_on then
      Array.init n_warps_total (fun _ -> Array.make Profile.n_buckets 0)
    else [||]
  in
  let acct_from = if prof_on then Array.make n_warps_total 0 else [||] in
  let acct_class =
    if prof_on then Array.make n_warps_total Profile.issue else [||]
  in
  (* Producer bucket of each register, so a scoreboard wait classifies as
     "waiting on a load" vs "waiting on arithmetic". *)
  let freg_src =
    if prof_on then
      Array.init n_warps_total (fun _ ->
          Array.make (max 1 p.Isa.n_fregs) Profile.arith)
    else [||]
  in
  let ireg_src =
    if prof_on then
      Array.init n_warps_total (fun _ ->
          Array.make (max 1 p.Isa.n_iregs) Profile.mem)
    else [||]
  in
  (* Timeline ring buffer: flat parallel arrays; when capacity overflows
     the oldest spans are overwritten (counted in [ring_dropped]). *)
  let ring_cap =
    match profile with
    | None -> 0
    | Some s ->
        if s.timeline_capacity < 0 then
          invalid_arg "Sm.run: timeline_capacity must be >= 0";
        s.timeline_capacity
  in
  let ring_warp = Array.make (max 1 ring_cap) 0 in
  let ring_bucket = Array.make (max 1 ring_cap) 0 in
  let ring_start = Array.make (max 1 ring_cap) 0 in
  let ring_stop = Array.make (max 1 ring_cap) 0 in
  let ring_n = ref 0 and ring_next = ref 0 and ring_dropped = ref 0 in
  let ring_push wi bucket start stop =
    if ring_cap > 0 then begin
      let i = !ring_next in
      if !ring_n = ring_cap then incr ring_dropped else incr ring_n;
      ring_warp.(i) <- wi;
      ring_bucket.(i) <- bucket;
      ring_start.(i) <- start;
      ring_stop.(i) <- stop;
      ring_next := if i + 1 = ring_cap then 0 else i + 1
    end
  in
  (* Close the open span of warp [wi] at the current cycle. *)
  let prof_flush wi =
    let from = acct_from.(wi) in
    if !now > from then begin
      let cls = acct_class.(wi) in
      pb.(wi).(cls) <- pb.(wi).(cls) + (!now - from);
      ring_push wi cls from !now;
      acct_from.(wi) <- !now
    end
  in
  (* Reclassify warp [wi], flushing if the bucket changes. *)
  let prof_class wi cls =
    if acct_class.(wi) <> cls then begin
      prof_flush wi;
      acct_class.(wi) <- cls
    end
  in
  (* Per-barrier wait statistics, aggregated across CTAs; slot [nbar] is
     the CTA-wide barrier. *)
  let nbar = arch.Arch.named_barriers_per_sm in
  let bw_count = if prof_on then Array.make (nbar + 1) 0 else [||] in
  let bw_total = if prof_on then Array.make (nbar + 1) 0 else [||] in
  let bw_max = if prof_on then Array.make (nbar + 1) 0 else [||] in
  let bw_hist =
    if prof_on then Array.make_matrix (nbar + 1) Profile.hist_buckets 0
    else [||]
  in
  (* --- stall-event queue: a binary min-heap on wake-up time ---
     Invariant: heap entries are exactly the [Stalled] warps (a warp
     leaves [Stalled] only by being popped here), so capacity is the warp
     count and the heap minimum is the earliest [stall_until] — the
     fast-forward target that the per-cycle scan used to rediscover. *)
  let heap_t = Array.make (max 1 n_warps_total) max_int in
  let heap_w = Array.make (max 1 n_warps_total) (-1) in
  let heap_n = ref 0 in
  let heap_swap i j =
    let t = heap_t.(i) and w = heap_w.(i) in
    heap_t.(i) <- heap_t.(j);
    heap_w.(i) <- heap_w.(j);
    heap_t.(j) <- t;
    heap_w.(j) <- w
  in
  let heap_push t wi =
    let i = ref !heap_n in
    heap_t.(!i) <- t;
    heap_w.(!i) <- wi;
    incr heap_n;
    let up = ref true in
    while !up && !i > 0 do
      let parent = (!i - 1) / 2 in
      if heap_t.(parent) > heap_t.(!i) then begin
        heap_swap parent !i;
        i := parent
      end
      else up := false
    done
  in
  let heap_pop () =
    let top = heap_w.(0) in
    decr heap_n;
    let n = !heap_n in
    heap_t.(0) <- heap_t.(n);
    heap_w.(0) <- heap_w.(n);
    heap_t.(n) <- max_int;
    heap_w.(n) <- -1;
    let i = ref 0 in
    let down = ref true in
    while !down do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < n && heap_t.(l) < heap_t.(!smallest) then smallest := l;
      if r < n && heap_t.(r) < heap_t.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        heap_swap !i !smallest;
        i := !smallest
      end
      else down := false
    done;
    top
  in
  (* Every Stalled transition goes through here so the heap invariant
     holds. Callers run on Ready or Waiting_* warps (never re-stall);
     [cls] is the profiler bucket the sleep accrues into. *)
  let stall_warp w until cls =
    if prof_on then prof_class w.index cls;
    w.st <- Stalled;
    w.stall_until <- until;
    heap_push until w.index
  in
  (* --- functional helpers --- *)
  let point_of w lane batch =
    let base = job.cta_point_base.(w.cta) in
    match p.Isa.point_map with
    | Isa.Coop -> base + (batch * 32) + lane
    | Isa.Thread_per_point ->
        base + (batch * p.Isa.n_warps * 32) + (w.wid * 32) + lane
  in
  let saddr_eval (a : Isa.saddr) w lane =
    a.Isa.s_base
    + (a.Isa.s_warp_mul * w.wid)
    + (a.Isa.s_lane_mul * lane)
    + match a.Isa.s_ireg with
      | Some r -> a.Isa.s_ireg_mul * w.iregs.(r).(lane)
      | None -> 0
  in
  let src_value w lane = function
    | Isa.Sreg r -> w.fregs.(r).(lane)
    | Isa.Simm f -> f
    | Isa.Sconst s -> p.Isa.const_mem.(s)
    | Isa.Sconst_warp s -> p.Isa.const_mem.(s + w.wid)
    | Isa.Sshared a -> mem.Memstate.shared.(w.cta).(saddr_eval a w lane)
  in
  let field_of w lane = function
    | Isa.F_static f -> f
    | Isa.F_ireg r -> w.iregs.(r).(lane)
  in
  let apply_fop op (s : float array) =
    match op with
    | Isa.Add -> s.(0) +. s.(1)
    | Isa.Sub -> s.(0) -. s.(1)
    | Isa.Mul -> s.(0) *. s.(1)
    | Isa.Fma -> Float.fma s.(0) s.(1) s.(2)
    | Isa.Div -> s.(0) /. s.(1)
    | Isa.Sqrt -> sqrt s.(0)
    | Isa.Exp -> exp s.(0)
    | Isa.Log -> log s.(0)
    | Isa.Max -> Float.max s.(0) s.(1)
    | Isa.Min -> Float.min s.(0) s.(1)
    | Isa.Neg -> -.s.(0)
  in
  (* Issue-path scratch, allocated once per run (the issue loop itself
     allocates nothing). *)
  let vals = Array.make (max 1 tr.Trace.max_srcs) 0.0 in
  let per_bank : int list array = Array.make arch.Arch.shared_banks [] in
  (* Shared bank-conflict serialization: number of distinct addresses that
     collide per bank (broadcast of one address is free). *)
  let conflict_ways (a : Isa.saddr) w pred =
    if a.Isa.s_lane_mul = 0 && a.Isa.s_ireg = None then 1
    else begin
      Array.fill per_bank 0 arch.Arch.shared_banks [];
      for lane = 0 to 31 do
        if lane_active pred lane then begin
          let addr = saddr_eval a w lane in
          let bank = addr mod arch.Arch.shared_banks in
          if not (List.mem addr per_bank.(bank)) then
            per_bank.(bank) <- addr :: per_bank.(bank)
        end
      done;
      Array.fold_left (fun acc l -> max acc (List.length l)) 1 per_bank
    end
  in
  (* --- pipe / path helpers --- *)
  let pipe_free pipe = pipe.busy < float_of_int !now +. 1.0 in
  let pipe_issue pipe slots =
    pipe.busy <- Float.max pipe.busy (float_of_int !now) +. (slots /. pipe.rate)
  in
  let path_transfer path bytes =
    let transfer = float_of_int bytes /. path.bytes_per_cycle in
    let start = Float.max path.drain (float_of_int !now) in
    path.drain <- start +. transfer;
    int_of_float (Float.ceil (start +. transfer)) - !now
  in
  (* Warp-granularity barrier release; [slot] is the profiler's
     histogram slot ([nbar] for the CTA-wide barrier). *)
  let release_waiters b kind slot =
    let cls =
      match kind with `Named -> Profile.bar_named | `Cta -> Profile.bar_cta
    in
    for i = 0 to b.n_waiters - 1 do
      let w = warps.(b.waiters.(i)) in
      let wait = !now - w.wait_since in
      (match kind with
      | `Named -> c.barrier_stalls <- c.barrier_stalls + wait
      | `Cta -> c.cta_barrier_stalls <- c.cta_barrier_stalls + wait);
      if prof_on then begin
        bw_count.(slot) <- bw_count.(slot) + 1;
        bw_total.(slot) <- bw_total.(slot) + wait;
        if wait > bw_max.(slot) then bw_max.(slot) <- wait;
        let h = Profile.hist_bucket wait in
        bw_hist.(slot).(h) <- bw_hist.(slot).(h) + 1
      end;
      stall_warp w (!now + 5) cls
    done;
    b.n_waiters <- 0
  in
  (* Hint for the fast-forward when nothing can issue (pipe back-pressure
     and scoreboard times; stall wake-ups come from the event queue). *)
  let min_hint = ref max_int in
  let hint t = if t > !now && t < !min_hint then min_hint := t in
  let hintf t = hint (int_of_float (Float.ceil t)) in
  let finish_issue w =
    Trace.advance tr ~warp:w.wid ~batches:job.batches w.cur;
    c.issued <- c.issued + 1
  in
  let fetch_ok w entry_id (entry : Trace.entry) =
    if w.paid_fetch = entry_id then true
    else begin
      let line = Caches.Icache.line_of_addr arch entry.Trace.addr in
      let stall = Caches.Icache.access icache ~now:!now ~line in
      if stall > 0 then begin
        (* [icache_stall_cycles] is taken from the cache's own once-per-fill
           count at the end of the run: warps joining an in-flight fill
           used to re-add their whole wait here, over-counting one fill up
           to n_warps times. *)
        stall_warp w (!now + stall) Profile.icache;
        (* The fill is delivered to this warp even if contention
           evicts the line before the retry. *)
        w.paid_fetch <- entry_id;
        false
      end
      else true
    end
  in
  let regs_ready w (srcs : Isa.src array) =
    let t = ref 0 in
    for i = 0 to Array.length srcs - 1 do
      match Array.unsafe_get srcs i with
      | Isa.Sreg r -> if w.freg_ready.(r) > !t then t := w.freg_ready.(r)
      | Isa.Sshared a -> (
          match a.Isa.s_ireg with
          | Some r -> if w.ireg_ready.(r) > !t then t := w.ireg_ready.(r)
          | None -> ())
      | Isa.Simm _ | Isa.Sconst _ | Isa.Sconst_warp _ -> ()
    done;
    !t
  in
  let ccache_check w entry_id (entry : Trace.entry) =
    (* Probe the constant cache for every constant operand; a miss
       stalls the warp while the line fills (paid once per entry —
       the fill is delivered even under eviction pressure). *)
    if (not entry.Trace.has_const) || w.paid_const = entry_id then true
    else begin
      let srcs = entry.Trace.srcs in
      let stall = ref 0 in
      for i = 0 to Array.length srcs - 1 do
        match srcs.(i) with
        | Isa.Sconst slot ->
            stall := max !stall (Caches.Ccache.access ccache ~now:!now ~slot)
        | Isa.Sconst_warp base ->
            stall :=
              max !stall
                (Caches.Ccache.access ccache ~now:!now ~slot:(base + w.wid))
        | Isa.Sreg _ | Isa.Simm _ | Isa.Sshared _ -> ()
      done;
      if !stall > 0 then begin
        (* As with the i-cache: the aggregate counter now comes from the
           cache's once-per-fill count, not per-warp waits. *)
        stall_warp w (!now + !stall) Profile.ccache;
        w.paid_const <- entry_id;
        false
      end
      else true
    end
  in
  (* Block reason of the most recent failed issue attempt that left its
     warp Ready (profiler only): [try_issue] records it at every such
     [false] path, and the scheduler scan turns it into the warp's
     accrual bucket. *)
  let block = ref Profile.issue in
  (* Bucket of the latest-finishing unavailable source operand: the
     producer that actually gates this instruction. *)
  let sb_class ?ireg w (srcs : Isa.src array) =
    let t = ref 0 and cls = ref Profile.arith in
    for i = 0 to Array.length srcs - 1 do
      match Array.unsafe_get srcs i with
      | Isa.Sreg r ->
          if w.freg_ready.(r) > !t then begin
            t := w.freg_ready.(r);
            cls := freg_src.(w.index).(r)
          end
      | Isa.Sshared a -> (
          match a.Isa.s_ireg with
          | Some r ->
              if w.ireg_ready.(r) > !t then begin
                t := w.ireg_ready.(r);
                cls := ireg_src.(w.index).(r)
              end
          | None -> ())
      | Isa.Simm _ | Isa.Sconst _ | Isa.Sconst_warp _ -> ()
    done;
    (match ireg with
    | Some r ->
        if w.ireg_ready.(r) > !t then begin
          t := w.ireg_ready.(r);
          cls := ireg_src.(w.index).(r)
        end
    | None -> ());
    !cls
  in
  let set_block_sb ?ireg w srcs =
    if prof_on then block := sb_class ?ireg w srcs
  in
  let set_fsrc w r cls = if prof_on then freg_src.(w.index).(r) <- cls in
  let set_isrc w r cls = if prof_on then ireg_src.(w.index).(r) <- cls in
  (* Attempt to issue the next instruction of warp [w]; true if issued. *)
  let try_issue w =
    match Trace.peek tr ~warp:w.wid ~batches:job.batches w.cur with
    | None ->
        if prof_on then prof_class w.index Profile.idle;
        w.st <- Retired;
        decr live;
        false
    | Some entry_id -> (
        let entry = tr.Trace.entries.(entry_id) in
        let batch = w.cur.Trace.batch in
        match entry.Trace.instr with
        | None ->
            (* Synthetic warp-ID branch. *)
            if not (pipe_free alu) then begin
              hintf alu.busy;
              block := Profile.arith;
              false
            end
            else if not (fetch_ok w entry_id entry) then false
            else begin
              pipe_issue alu 1.0;
              c.branch_instrs <- c.branch_instrs + 1;
              finish_issue w;
              true
            end
        | Some instr -> (
            match instr with
            | Isa.Arith { op; dst; srcs; pred } ->
                let ready = regs_ready w srcs in
                if ready > !now then begin
                  hint ready;
                  set_block_sb w srcs;
                  false
                end
                else if not (pipe_free dp) then begin
                  hintf dp.busy;
                  block := Profile.arith;
                  false
                end
                else begin
                  let shared_ops = entry.Trace.shared_srcs in
                  let n_shared = Array.length shared_ops in
                  let collector = arch.Arch.shared_operand_collector in
                  let shared_ok =
                    n_shared = 0 || collector || pipe_free shared_pipe
                  in
                  if not shared_ok then begin
                    hintf shared_pipe.busy;
                    block := Profile.mem;
                    false
                  end
                  else if not (ccache_check w entry_id entry) then false
                  else if not (fetch_ok w entry_id entry) then false
                  else begin
                    let penalty =
                      if
                        entry.Trace.has_const
                        || ((op = Isa.Exp || op = Isa.Log)
                           && not p.Isa.exp_consts_in_registers)
                      then arch.Arch.const_operand_penalty
                      else 1.0
                    in
                    pipe_issue dp (entry.Trace.dp_slots *. penalty);
                    c.dp_warp_instrs <- c.dp_warp_instrs + 1;
                    let extra = ref 0 in
                    for i = 0 to n_shared - 1 do
                      let a = shared_ops.(i) in
                      let ways = conflict_ways a w pred in
                      c.shared_accesses <- c.shared_accesses + 1;
                      c.bank_conflict_slots <- c.bank_conflict_slots + ways - 1;
                      if not collector then
                        pipe_issue shared_pipe (float_of_int ways);
                      extra := arch.Arch.shared_latency
                    done;
                    w.freg_ready.(dst) <-
                      !now + (arch.Arch.arith_latency * entry.Trace.lat_mult)
                      + !extra;
                    set_fsrc w dst Profile.arith;
                    (* Functional execution at issue. *)
                    let n_src = Array.length srcs in
                    for lane = 0 to 31 do
                      if lane_active pred lane then begin
                        for k = 0 to n_src - 1 do
                          vals.(k) <- src_value w lane srcs.(k)
                        done;
                        w.fregs.(dst).(lane) <- apply_fop op vals
                      end
                    done;
                    c.flops <- c.flops + (entry.Trace.flops * active_lanes pred);
                    finish_issue w;
                    true
                  end
                end
            | Isa.Mov { dst; src; pred } ->
                let ready = regs_ready w entry.Trace.srcs in
                if ready > !now then begin
                  hint ready;
                  set_block_sb w entry.Trace.srcs;
                  false
                end
                else if not (pipe_free alu) then begin
                  hintf alu.busy;
                  block := Profile.arith;
                  false
                end
                else if not (ccache_check w entry_id entry) then false
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue alu 1.0;
                  let extra = ref 0 in
                  (match src with
                  | Isa.Sshared a ->
                      let ways = conflict_ways a w pred in
                      c.shared_accesses <- c.shared_accesses + 1;
                      c.bank_conflict_slots <- c.bank_conflict_slots + ways - 1;
                      pipe_issue shared_pipe (float_of_int ways);
                      extra := arch.Arch.shared_latency
                  | _ -> ());
                  w.freg_ready.(dst) <- !now + arch.Arch.arith_latency + !extra;
                  set_fsrc w dst
                    (match src with
                    | Isa.Sshared _ -> Profile.mem
                    | _ -> Profile.arith);
                  for lane = 0 to 31 do
                    if lane_active pred lane then
                      w.fregs.(dst).(lane) <- src_value w lane src
                  done;
                  finish_issue w;
                  true
                end
            | Isa.Ld_global { dst; group; field; via_tex; pred } ->
                if not (pipe_free lsu) then begin
                  hintf lsu.busy;
                  block := Profile.mem;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue lsu 1.0;
                  let path = if via_tex && arch.Arch.has_ldg then tex else globalp in
                  let bytes = 8 * 32 in
                  (if via_tex && arch.Arch.has_ldg then
                     c.tex_bytes <- c.tex_bytes + bytes
                   else c.global_bytes <- c.global_bytes + bytes);
                  let done_in = path_transfer path bytes in
                  w.freg_ready.(dst) <-
                    !now + arch.Arch.global_latency + done_in;
                  set_fsrc w dst Profile.mem;
                  for lane = 0 to 31 do
                    if lane_active pred lane then begin
                      let f = field_of w lane field in
                      let pt = point_of w lane batch in
                      w.fregs.(dst).(lane) <-
                        mem.Memstate.globals.(group).(f).(pt)
                    end
                  done;
                  finish_issue w;
                  true
                end
            | Isa.St_global { src; group; field; pred } ->
                let ready = regs_ready w entry.Trace.srcs in
                if ready > !now then begin
                  hint ready;
                  set_block_sb w entry.Trace.srcs;
                  false
                end
                else if not (pipe_free lsu) then begin
                  hintf lsu.busy;
                  block := Profile.mem;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue lsu 1.0;
                  let bytes = 8 * active_lanes pred in
                  c.global_bytes <- c.global_bytes + bytes;
                  ignore (path_transfer globalp bytes);
                  for lane = 0 to 31 do
                    if lane_active pred lane then begin
                      let f = field_of w lane field in
                      let pt = point_of w lane batch in
                      mem.Memstate.globals.(group).(f).(pt) <-
                        src_value w lane src
                    end
                  done;
                  finish_issue w;
                  true
                end
            | Isa.Ld_shared { dst; addr; pred } ->
                let ready =
                  match addr.Isa.s_ireg with
                  | Some r -> w.ireg_ready.(r)
                  | None -> 0
                in
                if ready > !now then begin
                  hint ready;
                  (if prof_on then
                     match addr.Isa.s_ireg with
                     | Some r -> block := ireg_src.(w.index).(r)
                     | None -> ());
                  false
                end
                else if not (pipe_free lsu && pipe_free shared_pipe) then begin
                  hintf (Float.max lsu.busy shared_pipe.busy);
                  block := Profile.mem;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue lsu 1.0;
                  let ways = conflict_ways addr w pred in
                  c.shared_accesses <- c.shared_accesses + 1;
                  c.bank_conflict_slots <- c.bank_conflict_slots + ways - 1;
                  pipe_issue shared_pipe (float_of_int ways);
                  w.freg_ready.(dst) <- !now + arch.Arch.shared_latency;
                  set_fsrc w dst Profile.mem;
                  for lane = 0 to 31 do
                    if lane_active pred lane then
                      w.fregs.(dst).(lane) <-
                        mem.Memstate.shared.(w.cta).(saddr_eval addr w lane)
                  done;
                  finish_issue w;
                  true
                end
            | Isa.St_shared { src; addr; pred } ->
                let ready =
                  max
                    (regs_ready w entry.Trace.srcs)
                    (match addr.Isa.s_ireg with
                    | Some r -> w.ireg_ready.(r)
                    | None -> 0)
                in
                if ready > !now then begin
                  hint ready;
                  set_block_sb ?ireg:addr.Isa.s_ireg w entry.Trace.srcs;
                  false
                end
                else if not (pipe_free lsu && pipe_free shared_pipe) then begin
                  hintf (Float.max lsu.busy shared_pipe.busy);
                  block := Profile.mem;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue lsu 1.0;
                  let ways = conflict_ways addr w pred in
                  c.shared_accesses <- c.shared_accesses + 1;
                  c.bank_conflict_slots <- c.bank_conflict_slots + ways - 1;
                  pipe_issue shared_pipe (float_of_int ways);
                  for lane = 0 to 31 do
                    if lane_active pred lane then
                      mem.Memstate.shared.(w.cta).(saddr_eval addr w lane) <-
                        src_value w lane src
                  done;
                  finish_issue w;
                  true
                end
            | Isa.Ld_local { dst; slot } ->
                if not (pipe_free lsu) then begin
                  hintf lsu.busy;
                  block := Profile.mem;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue lsu 1.0;
                  let bytes = 8 * 32 in
                  c.local_bytes <- c.local_bytes + bytes;
                  let done_in = path_transfer localp bytes in
                  w.freg_ready.(dst) <- !now + arch.Arch.global_latency + done_in;
                  set_fsrc w dst Profile.mem;
                  for lane = 0 to 31 do
                    let idx =
                      (((w.wid * 32) + lane) * p.Isa.local_doubles) + slot
                    in
                    w.fregs.(dst).(lane) <- mem.Memstate.local.(w.cta).(idx)
                  done;
                  finish_issue w;
                  true
                end
            | Isa.St_local { src; slot } ->
                if w.freg_ready.(src) > !now then begin
                  hint w.freg_ready.(src);
                  if prof_on then block := freg_src.(w.index).(src);
                  false
                end
                else if not (pipe_free lsu) then begin
                  hintf lsu.busy;
                  block := Profile.mem;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue lsu 1.0;
                  let bytes = 8 * 32 in
                  c.local_bytes <- c.local_bytes + bytes;
                  ignore (path_transfer localp bytes);
                  for lane = 0 to 31 do
                    let idx =
                      (((w.wid * 32) + lane) * p.Isa.local_doubles) + slot
                    in
                    mem.Memstate.local.(w.cta).(idx) <- w.fregs.(src).(lane)
                  done;
                  finish_issue w;
                  true
                end
            | Isa.Ld_const_bank { dst; slot } ->
                if not (pipe_free lsu) then begin
                  hintf lsu.busy;
                  block := Profile.mem;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue lsu 1.0;
                  let path = if arch.Arch.has_ldg then tex else globalp in
                  let bytes = 8 * 32 in
                  (if arch.Arch.has_ldg then c.tex_bytes <- c.tex_bytes + bytes
                   else c.global_bytes <- c.global_bytes + bytes);
                  let done_in = path_transfer path bytes in
                  w.freg_ready.(dst) <- !now + arch.Arch.global_latency + done_in;
                  set_fsrc w dst Profile.mem;
                  for lane = 0 to 31 do
                    w.fregs.(dst).(lane) <- p.Isa.const_bank.(w.wid).(lane).(slot)
                  done;
                  finish_issue w;
                  true
                end
            | Isa.Ld_param { dst_i; slot } ->
                if not (pipe_free lsu) then begin
                  hintf lsu.busy;
                  block := Profile.mem;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue lsu 1.0;
                  let path = if arch.Arch.has_ldg then tex else globalp in
                  let bytes = 4 * 32 in
                  (if arch.Arch.has_ldg then c.tex_bytes <- c.tex_bytes + bytes
                   else c.global_bytes <- c.global_bytes + bytes);
                  let done_in = path_transfer path bytes in
                  w.ireg_ready.(dst_i) <- !now + arch.Arch.global_latency + done_in;
                  set_isrc w dst_i Profile.mem;
                  for lane = 0 to 31 do
                    w.iregs.(dst_i).(lane) <- p.Isa.param_bank.(w.wid).(lane).(slot)
                  done;
                  finish_issue w;
                  true
                end
            | Isa.Shfl { dst; src; lane } ->
                if w.freg_ready.(src) > !now then begin
                  hint w.freg_ready.(src);
                  if prof_on then block := freg_src.(w.index).(src);
                  false
                end
                else if not (pipe_free alu) then begin
                  hintf alu.busy;
                  block := Profile.arith;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue alu 2.0 (* two 32-bit shuffles per double *);
                  w.freg_ready.(dst) <- !now + arch.Arch.arith_latency;
                  set_fsrc w dst Profile.arith;
                  let v = w.fregs.(src).(lane) in
                  for l = 0 to 31 do
                    w.fregs.(dst).(l) <- v
                  done;
                  finish_issue w;
                  true
                end
            | Isa.Shfl_rot { dst; src; delta } | Isa.Shfl_bfly { dst; src; xor_mask = delta }
              ->
                if w.freg_ready.(src) > !now then begin
                  hint w.freg_ready.(src);
                  if prof_on then block := freg_src.(w.index).(src);
                  false
                end
                else if not (pipe_free alu) then begin
                  hintf alu.busy;
                  block := Profile.arith;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue alu 2.0 (* two 32-bit shuffles per double *);
                  w.freg_ready.(dst) <- !now + arch.Arch.arith_latency;
                  set_fsrc w dst Profile.arith;
                  (* Snapshot the source row first: after register
                     allocation [dst] may alias [src], and every lane
                     reads another lane's pre-shuffle value. *)
                  let prev = Array.copy w.fregs.(src) in
                  let rot = match instr with Isa.Shfl_rot _ -> true | _ -> false in
                  for l = 0 to 31 do
                    let from =
                      if rot then (l + delta) land 31 else l lxor delta
                    in
                    w.fregs.(dst).(l) <- prev.(from)
                  done;
                  finish_issue w;
                  true
                end
            | Isa.Ishfl { dst_i; src_i; lane } ->
                if w.ireg_ready.(src_i) > !now then begin
                  hint w.ireg_ready.(src_i);
                  if prof_on then block := ireg_src.(w.index).(src_i);
                  false
                end
                else if not (pipe_free alu) then begin
                  hintf alu.busy;
                  block := Profile.arith;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue alu 1.0;
                  w.ireg_ready.(dst_i) <- !now + arch.Arch.arith_latency;
                  set_isrc w dst_i Profile.arith;
                  let v = w.iregs.(src_i).(lane) in
                  for l = 0 to 31 do
                    w.iregs.(dst_i).(l) <- v
                  done;
                  finish_issue w;
                  true
                end
            | Isa.Bar_arrive { bar; count } ->
                if not (pipe_free alu) then begin
                  hintf alu.busy;
                  block := Profile.arith;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue alu 1.0;
                  let b = bars.(w.cta).(bar) in
                  b.arrived <- b.arrived + 1;
                  if b.arrived >= count then begin
                    b.arrived <- b.arrived - count;
                    release_waiters b `Named bar
                  end;
                  finish_issue w;
                  true
                end
            | Isa.Bar_sync { bar; count } ->
                if not (pipe_free alu) then begin
                  hintf alu.busy;
                  block := Profile.arith;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue alu 1.0;
                  let b = bars.(w.cta).(bar) in
                  b.arrived <- b.arrived + 1;
                  finish_issue w;
                  if b.arrived >= count then begin
                    b.arrived <- b.arrived - count;
                    release_waiters b `Named bar
                  end
                  else begin
                    w.st <- Waiting_bar bar;
                    w.wait_since <- !now;
                    b.waiters.(b.n_waiters) <- w.index;
                    b.n_waiters <- b.n_waiters + 1
                  end;
                  true
                end
            | Isa.Bar_cta ->
                if not (pipe_free alu) then begin
                  hintf alu.busy;
                  block := Profile.arith;
                  false
                end
                else if not (fetch_ok w entry_id entry) then false
                else begin
                  pipe_issue alu 1.0;
                  let b = cta_bars.(w.cta) in
                  b.arrived <- b.arrived + 1;
                  finish_issue w;
                  if b.arrived >= p.Isa.n_warps then begin
                    b.arrived <- 0;
                    release_waiters b `Cta nbar
                  end
                  else begin
                    w.st <- Waiting_cta;
                    w.wait_since <- !now;
                    b.waiters.(b.n_waiters) <- w.index;
                    b.n_waiters <- b.n_waiters + 1
                  end;
                  true
                end))
  in
  (* Profiler classification after a scheduler visit. On success the
     visit cycle is an [issue] cycle even when the warp parks on a
     barrier in the same call; on failure a still-Ready warp accrues the
     blocking reason recorded by [try_issue] (state transitions — stall,
     park, retire — were already classified at their site). *)
  let prof_issued w =
    let wi = w.index in
    match w.st with
    | Ready | Stalled | Retired -> prof_class wi Profile.issue
    | Waiting_bar _ | Waiting_cta ->
        prof_flush wi;
        pb.(wi).(Profile.issue) <- pb.(wi).(Profile.issue) + 1;
        ring_push wi Profile.issue !now (!now + 1);
        acct_from.(wi) <- !now + 1;
        acct_class.(wi) <-
          (if w.st = Waiting_cta then Profile.bar_cta else Profile.bar_named)
  in
  let prof_failed w =
    match w.st with Ready -> prof_class w.index !block | _ -> ()
  in
  (* --- main scheduling loop ---
     The scan visits the same position sequence as the original
     full-array round-robin — positions [(rr + k) mod n] for k = 0.. with
     [rr] re-based past a warp that issues — but skips runs of non-ready
     positions through the bitset, and stall wake-ups come from the event
     queue instead of re-testing every warp each cycle. *)
  let rr = ref 0 in
  let idle_streak = ref 0 in
  while !live > 0 do
    if !now >= budget then
      fault Cycle_budget
        (Printf.sprintf
           "cycle budget of %d exhausted with %d live warp(s) remaining"
           budget !live);
    while !heap_n > 0 && heap_t.(0) <= !now do
      let wi = heap_pop () in
      warps.(wi).st <- Ready;
      set_ready wi
    done;
    (* Wake-ups pushed *during* this cycle's scan must not shorten the
       fast-forward: the original scan only hinted warps that were already
       stalled when their position was visited, so a warp stalling
       mid-scan slept until the next hinted event. Snapshot the heap
       minimum now to reproduce that. *)
    let heap_min_start = if !heap_n > 0 then heap_t.(0) else max_int in
    min_hint := max_int;
    let issued_this_cycle = ref 0 in
    let k = ref 0 in
    let scanning = ref (!ready_count > 0) in
    while
      !scanning
      && !issued_this_cycle < arch.Arch.schedulers
      && !k < n_warps_total
    do
      let pos = (!rr + !k) mod n_warps_total in
      let j = next_ready pos in
      if j < 0 then scanning := false
      else begin
        let d = (j - pos + n_warps_total) mod n_warps_total in
        if d > n_warps_total - 1 - !k then
          (* No ready warp among this cycle's remaining positions. *)
          scanning := false
        else begin
          k := !k + d;
          let w = warps.(j) in
          if try_issue w then begin
            incr issued_this_cycle;
            rr := w.index + 1;
            if prof_on then prof_issued w
          end
          else if prof_on then prof_failed w;
          (match w.st with
          | Ready -> ()
          | Stalled | Waiting_bar _ | Waiting_cta | Retired ->
              clear_ready w.index);
          incr k
        end
      end
    done;
    if !issued_this_cycle = 0 then begin
      incr idle_streak;
      (* Deadlock: no warp is ready or sleeping on a stall (the ready set
         and event queue are empty), so every live warp is parked on a
         barrier with no pending releases possible. *)
      if !ready_count = 0 && !heap_n = 0 && !live > 0 then
        fault Barrier_deadlock
          (Printf.sprintf
             "every live warp (%d) waits on a barrier with no pending \
              arrival or stall wake-up"
             !live);
      if !idle_streak > 1_000_000 then
        fault No_progress
          (Printf.sprintf
             "no instruction issued for 1M consecutive scheduler visits \
              (hint=%d)"
             !min_hint);
      (* Fast-forward to the next possible event: the earliest stall
         wake-up pending at cycle start or the earliest issue-blocking
         hint. *)
      let target = min heap_min_start !min_hint in
      now := if target = max_int then !now + 1 else max (!now + 1) target
    end
    else begin
      idle_streak := 0;
      incr now
    end
  done;
  (* Aggregate cache-stall counters are the caches' once-per-fill
     latency totals (the old per-warp accumulation re-counted a shared
     in-flight fill for every warp that joined it). *)
  c.icache_stall_cycles <-
    (Caches.Icache.stats icache).Caches.Icache.fill_stall_cycles;
  c.ccache_stall_cycles <-
    (Caches.Ccache.stats ccache).Caches.Ccache.fill_stall_cycles;
  let profile_result =
    match profile with
    | None -> None
    | Some _ ->
        (* Close every warp's open span at the final cycle; after this,
           each warp's buckets sum to exactly [!now]. *)
        for wi = 0 to n_warps_total - 1 do
          prof_flush wi
        done;
        (* Unroll the ring oldest-first so the timeline is chronological
           by span end. *)
        let spans =
          Array.init !ring_n (fun i ->
              let idx =
                if !ring_dropped = 0 then i
                else
                  let j = !ring_next + i in
                  if j >= ring_cap then j - ring_cap else j
              in
              {
                Profile.sp_warp = ring_warp.(idx);
                sp_bucket = ring_bucket.(idx);
                sp_start = ring_start.(idx);
                sp_stop = ring_stop.(idx);
              })
        in
        let bar_waits = ref [] in
        for slot = nbar downto 0 do
          if bw_count.(slot) > 0 then
            bar_waits :=
              {
                Profile.bw_bar = (if slot = nbar then -1 else slot);
                bw_count = bw_count.(slot);
                bw_total = bw_total.(slot);
                bw_max = bw_max.(slot);
                bw_hist = Array.copy bw_hist.(slot);
              }
              :: !bar_waits
        done;
        Some
          {
            Profile.cycles = !now;
            warps = Array.map (fun w -> (w.cta, w.wid)) warps;
            buckets = pb;
            bar_waits = !bar_waits;
            timeline = spans;
            timeline_dropped = !ring_dropped;
          }
  in
  {
    cycles = !now;
    counters = c;
    icache = Caches.Icache.stats icache;
    ccache = Caches.Ccache.stats ccache;
    profile = profile_result;
  }
