type bound = { resource : string; points_per_sec : float }

type t = {
  bounds : bound list;
  binding : bound;
  occupancy : Machine.occupancy;
}

(* Per-CTA-batch demand on each resource, from one walk of the body with
   warp masks (mirrors Isa_stats.per_warp_of_program but accumulates
   resource units instead of counts). *)
type demand = {
  mutable warp_instrs : float;  (* issue slots *)
  mutable dp_slots : float;  (* DFMA-equivalent DP issue slots *)
  mutable shared_slots : float;  (* warp shared-access slots *)
  mutable tex_bytes : float;
  mutable global_bytes : float;
  mutable local_bytes : float;
}

let src_reads_const (s : Isa.src) =
  match s with Isa.Sconst _ | Isa.Sconst_warp _ -> true | _ -> false

let demand_of (arch : Arch.t) (p : Isa.program) =
  let d =
    {
      warp_instrs = 0.0;
      dp_slots = 0.0;
      shared_slots = 0.0;
      tex_bytes = 0.0;
      global_bytes = 0.0;
      local_bytes = 0.0;
    }
  in
  let warp_bytes = 32.0 *. 8.0 in
  let count warps (i : Isa.instr) =
    let w = float_of_int warps in
    d.warp_instrs <- d.warp_instrs +. w;
    match i with
    | Isa.Arith { op; srcs; _ } ->
        let slots = Isa.fop_dp_slots op in
        let slots =
          if Array.exists src_reads_const srcs then
            slots *. arch.Arch.const_operand_penalty
          else slots
        in
        d.dp_slots <- d.dp_slots +. (w *. slots);
        if
          (not arch.Arch.shared_operand_collector)
          && Array.exists
               (function Isa.Sshared _ -> true | _ -> false)
               srcs
        then d.shared_slots <- d.shared_slots +. w
    | Isa.Ld_global { via_tex; _ } ->
        if via_tex then d.tex_bytes <- d.tex_bytes +. (w *. warp_bytes)
        else d.global_bytes <- d.global_bytes +. (w *. warp_bytes)
    | Isa.St_global _ -> d.global_bytes <- d.global_bytes +. (w *. warp_bytes)
    | Isa.Ld_shared _ | Isa.St_shared _ ->
        d.shared_slots <- d.shared_slots +. w
    | Isa.Ld_local _ | Isa.St_local _ ->
        d.local_bytes <- d.local_bytes +. (w *. warp_bytes)
    | Isa.Mov { src; _ } ->
        if (match src with Isa.Sshared _ -> true | _ -> false)
           && not arch.Arch.shared_operand_collector
        then d.shared_slots <- d.shared_slots +. w
    | _ -> ()
  in
  let popcount mask =
    let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
    go mask 0
  in
  let full = (1 lsl p.Isa.n_warps) - 1 in
  let rec go mask = function
    | Isa.Instrs l -> List.iter (count (popcount mask)) l
    | Isa.Seq bs -> List.iter (go mask) bs
    | Isa.If_warps { mask = m; body } -> go (mask land m) body
    | Isa.Switch_warp arms ->
        Array.iteri (fun w arm -> if mask land (1 lsl w) <> 0 then go (1 lsl w) arm) arms
  in
  go full p.Isa.body;
  d

let demand_cycles (arch : Arch.t) (d : demand) =
  let per rate units = if units <= 0.0 then 0.0 else units /. rate in
  [
    ("warp-instruction issue",
     per (float_of_int arch.Arch.schedulers) d.warp_instrs);
    ("DP pipe", per arch.Arch.dp_issue_per_cycle d.dp_slots);
    ("shared-memory pipe", per arch.Arch.shared_issue_per_cycle d.shared_slots);
    ("texture path", per arch.Arch.tex_bytes_per_cycle d.tex_bytes);
    ("global-memory path", per arch.Arch.global_bytes_per_cycle d.global_bytes);
    ("local-memory (spill) path",
     per arch.Arch.local_bytes_per_cycle d.local_bytes);
  ]

let analyze (arch : Arch.t) (p : Isa.program) =
  let occ = Machine.occupancy arch p in
  let d = demand_of arch p in
  let points_per_batch =
    float_of_int
      (match p.Isa.point_map with
      | Isa.Coop -> 32
      | Isa.Thread_per_point -> p.Isa.n_warps * 32)
  in
  let clock = arch.Arch.clock_mhz *. 1e6 in
  let sms = float_of_int arch.Arch.n_sms in
  (* ceiling from "units of demand per batch" against "units per cycle";
     resident CTAs on one SM process CTAs in parallel but share the pipes,
     so the per-SM rate is units_per_cycle / (demand per batch) batches per
     cycle, independent of residency; residency matters only for latency
     hiding, which a roofline ignores. *)
  let bound resource units_per_cycle demand =
    if demand <= 0.0 then None
    else
      Some
        {
          resource;
          points_per_sec =
            units_per_cycle /. demand *. points_per_batch *. clock *. sms;
        }
  in
  let bounds =
    List.filter_map Fun.id
      [
        bound "warp-instruction issue"
          (float_of_int arch.Arch.schedulers)
          d.warp_instrs;
        bound "DP pipe" arch.Arch.dp_issue_per_cycle d.dp_slots;
        bound "shared-memory pipe" arch.Arch.shared_issue_per_cycle
          d.shared_slots;
        bound "texture path" arch.Arch.tex_bytes_per_cycle d.tex_bytes;
        bound "global-memory path" arch.Arch.global_bytes_per_cycle
          d.global_bytes;
        bound "local-memory (spill) path" arch.Arch.local_bytes_per_cycle
          d.local_bytes;
      ]
  in
  let bounds =
    List.sort (fun a b -> compare a.points_per_sec b.points_per_sec) bounds
  in
  { bounds; binding = List.hd bounds; occupancy = occ }

let pp ppf t =
  Format.fprintf ppf "@[<v>roofline (tightest first):@,";
  List.iter
    (fun b ->
      Format.fprintf ppf "  %-28s %.3e points/s%s@," b.resource
        b.points_per_sec
        (if b == t.binding then "   <- binding" else ""))
    t.bounds;
  Format.fprintf ppf "occupancy: %d CTAs/SM (limited by %s)@]"
    t.occupancy.Machine.resident_ctas t.occupancy.Machine.limited_by
