(** Whole-GPU kernel launches — a thin facade over {!Chip}.

    Occupancy is computed exactly as on the real hardware: resident CTAs
    per SM are limited by register-file capacity (the *maximum* per-warp
    register demand governs the whole kernel — §4.1's register-balance
    metric exists because of this), shared memory, warp slots, CTA slots,
    and named barriers (16 per SM divided by barriers per CTA, the
    footnote of §4.2).

    One SM-round is simulated cycle-accurately by the {!Sm} core; the
    launch's remaining CTAs are scheduled across SMs by the {!Chip}
    dispatcher with shared L2/DRAM bandwidth arbitration (the old
    fractional-wave scaling survives only as the informational [waves]
    field). *)

type launch = Chip.launch = {
  program : Isa.program;
  total_points : int;  (** logical problem size, e.g. 128^3 *)
  ctas : int;  (** CTAs in the launch grid *)
}

type occupancy = Chip.occupancy = {
  resident_ctas : int;
  limited_by : string;  (** which resource capped residency *)
  warps_per_sm : int;
}

val occupancy : Arch.t -> Isa.program -> occupancy
(** Raises {!Chip.Occupancy_rejected} if even a single CTA does not fit
    (e.g. register demand above the per-thread maximum — the spilling
    warning of §4.1 should have fired instead). *)

val points_per_cta : launch -> int

val batches_per_cta : launch -> int
(** [Coop] kernels: 32 points per batch; [Thread_per_point]: n_warps*32. *)

type result = Chip.result = {
  occ : occupancy;
  waves : float;  (** legacy wave count, informational only *)
  sm_cycles : int;  (** simulated cycles for one full SM-round *)
  time_s : float;  (** whole-launch wall time (scheduler makespan) *)
  points_per_sec : float;
  gflops : float;  (** SASS-style DP GFLOPS actually sustained *)
  dram_gbs : float;  (** tex+global+local traffic *)
  local_gbs : float;  (** spill traffic alone *)
  sim : Sm.result;  (** the full-round simulation *)
  tail_sim : Sm.result option;  (** the tail-round simulation, if any *)
  mem : Memstate.t;  (** post-run memory (outputs of the simulated CTAs) *)
  simulated_points : int;  (** grid points with valid outputs in [mem] *)
  chip : Chip.schedule;  (** dispatcher/arbiter outcome *)
}

val run :
  ?fill_inputs:(Memstate.t -> int -> unit) ->
  ?max_sim_batches:int ->
  ?faults:Fault.t list ->
  ?max_cycles:int ->
  ?profile:Sm.profile_spec ->
  ?n_sms:int ->
  ?skew:float ->
  Arch.t ->
  launch ->
  result
(** Delegates to {!Chip.run}; see there for the full contract.

    [fill_inputs mem n_points] populates the input field groups before
    simulation and is called exactly once, for the main simulation;
    secondary runs (pin runs, the tail round) reuse a prefix of that
    data (their outputs are discarded, and simulated cycles/counters
    never depend on float memory contents — addresses and stall times
    derive only from static program data). Launches streaming more than
    [max_sim_batches] batches per CTA (default 6) are extrapolated from
    two short simulations — cycle counts are linear in the batch count,
    so the prologue and per-batch cost are pinned exactly; functional
    outputs cover the simulated batches.

    [faults] are applied to the flattened trace before simulation
    ({!Fault.apply}, with barrier ids range-checked against the
    architecture's named-barrier count); [max_cycles] is forwarded to
    {!Sm.run} as the per-simulation watchdog budget. Both default to the
    clean, unlimited run, which may then raise {!Sm.Simulation_fault}
    only on a genuine deadlock or livelock.

    [profile] is forwarded to {!Sm.run} for the main simulation only
    (secondary runs exist purely to extrapolate cycles); the resulting
    ledger is [result.sim.profile].

    [n_sms] and [skew] override the architecture's SM count and clock
    skew for the chip scheduler (the per-SM simulation itself is
    unaffected). *)
