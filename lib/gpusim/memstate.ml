type t = {
  globals : float array array array;
  shared : float array array;
  local : float array array;
  n_points : int;
}

let create (p : Isa.program) ~n_points ~resident_ctas =
  let globals =
    Array.map
      (fun (g : Isa.group_info) ->
        Array.init g.Isa.fields (fun _ -> Array.make n_points 0.0))
      p.Isa.groups
  in
  let shared =
    Array.init resident_ctas (fun _ -> Array.make (max 1 p.Isa.shared_doubles) 0.0)
  in
  let local =
    Array.init resident_ctas (fun _ ->
        Array.make (max 1 (p.Isa.n_warps * 32 * p.Isa.local_doubles)) 0.0)
  in
  { globals; shared; local; n_points }

let copy_global_prefix ~src ~dst =
  let n = dst.n_points in
  assert (n <= src.n_points);
  Array.iteri
    (fun g fields ->
      Array.iteri
        (fun f field -> Array.blit src.globals.(g).(f) 0 field 0 n)
        fields)
    dst.globals

let group_index (p : Isa.program) name =
  let found = ref None in
  Array.iteri
    (fun i (g : Isa.group_info) ->
      if !found = None && g.Isa.group_name = name then found := Some i)
    p.Isa.groups;
  match !found with Some i -> i | None -> raise Not_found

let set_field t ~group ~field data =
  assert (Array.length data = t.n_points);
  Array.blit data 0 t.globals.(group).(field) 0 t.n_points

let get_field t ~group ~field = Array.copy t.globals.(group).(field)
