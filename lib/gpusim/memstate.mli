(** Functional memory state for a simulated SM: the global field groups
    (shared by all resident CTAs), per-CTA shared memory, and per-thread
    local (spill) backing store. *)

type t = {
  globals : float array array array;
      (** [globals.(group).(field).(point)] *)
  shared : float array array;  (** [shared.(cta_slot).(addr)] *)
  local : float array array;
      (** [local.(cta_slot).((warp*32 + lane) * local_doubles + slot)] *)
  n_points : int;
}

val create :
  Isa.program -> n_points:int -> resident_ctas:int -> t
(** Global arrays are zero-initialized; the harness fills input groups. *)

val copy_global_prefix : src:t -> dst:t -> unit
(** Copy the first [dst.n_points] points of every global field from
    [src] into [dst] ([dst] must not cover more points than [src]).
    Lets a short pin run reuse the data an earlier [fill_inputs] already
    produced instead of regenerating it. *)

val group_index : Isa.program -> string -> int
(** Index of a named field group. Raises [Not_found]. *)

val set_field : t -> group:int -> field:int -> float array -> unit
(** Copy input data into a global field (length must be [n_points]). *)

val get_field : t -> group:int -> field:int -> float array
(** Copy a global field out (e.g. kernel outputs). *)
