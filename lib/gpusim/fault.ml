(* Deterministic trace-level fault injection.

   Faults are applied to the flattened per-warp traces right before
   simulation, so the program artifact stays untouched and the same
   compiled kernel can be run clean and poisoned in one process. Each
   fault is pure: [apply] returns a fresh {!Trace.t} sharing unmodified
   entries with the input.

   Positions are counted over a warp's prologue followed by its body, in
   trace order, among the instructions the fault targets (barrier
   arrivals for [Drop_arrive]/[Extra_arrive], any named-barrier op for
   [Swap_barrier]). A fault that matches nothing raises
   [Invalid_argument] — silently injecting nothing would make a
   containment test vacuously pass. *)

type t =
  | Drop_arrive of { warp : int; nth : int }
  | Swap_barrier of { warp : int; nth : int; bar : int }
  | Extra_arrive of { warp : int; nth : int }
  | Latency of { warp : int; mult : int }
  | Corrupt_shfl of { warp : int; nth : int }

let to_string = function
  | Drop_arrive { warp; nth } ->
      Printf.sprintf "drop-arrive:warp=%d,nth=%d" warp nth
  | Swap_barrier { warp; nth; bar } ->
      Printf.sprintf "swap-bar:warp=%d,nth=%d,bar=%d" warp nth bar
  | Extra_arrive { warp; nth } ->
      Printf.sprintf "extra-arrive:warp=%d,nth=%d" warp nth
  | Latency { warp; mult } -> Printf.sprintf "latency:warp=%d,mult=%d" warp mult
  | Corrupt_shfl { warp; nth } ->
      Printf.sprintf "corrupt-shfl:warp=%d,nth=%d" warp nth

let describe = function
  | Drop_arrive { warp; nth } ->
      Printf.sprintf "drop barrier arrival %d of warp %d" nth warp
  | Swap_barrier { warp; nth; bar } ->
      Printf.sprintf "retarget barrier op %d of warp %d to barrier %d" nth warp
        bar
  | Extra_arrive { warp; nth } ->
      Printf.sprintf "duplicate barrier arrival %d of warp %d" nth warp
  | Latency { warp; mult } ->
      Printf.sprintf "multiply warp %d arithmetic latencies by %d" warp mult
  | Corrupt_shfl { warp; nth } ->
      Printf.sprintf "corrupt the lane selector of shuffle %d of warp %d" nth
        warp

(* A value must be a plain decimal natural: [int_of_string] would also
   accept hex, underscores and signs, which lets typos like "0x1" or
   "1_0" slip through a spec unnoticed. *)
let strict_nat s =
  let s = String.trim s in
  if
    s <> ""
    && String.length s <= 18
    && String.for_all (fun ch -> ch >= '0' && ch <= '9') s
  then int_of_string_opt s
  else None

let ( let* ) = Result.bind

(* Strict field parsing: every comma-separated piece must be one
   [key=nat] with an expected key, each expected key appears exactly
   once. Trailing garbage, unknown or duplicate keys and non-decimal
   values are errors — the old parser silently dropped them, so a typo'd
   spec injected a different fault than the one written. *)
let parse_fields kind rest keys =
  let tbl = Hashtbl.create 4 in
  let* () =
    List.fold_left
      (fun acc kv ->
        let* () = acc in
        match String.index_opt kv '=' with
        | None ->
            Error
              (Printf.sprintf "fault %S: %S is not KEY=VALUE" kind
                 (String.trim kv))
        | Some i -> (
            let k = String.trim (String.sub kv 0 i) in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            if not (List.mem k keys) then
              Error
                (Printf.sprintf "fault %S: unknown field %S (expected %s)" kind
                   k (String.concat ", " keys))
            else if Hashtbl.mem tbl k then
              Error (Printf.sprintf "fault %S: duplicate field %S" kind k)
            else
              match strict_nat v with
              | Some n ->
                  Hashtbl.add tbl k n;
                  Ok ()
              | None ->
                  Error
                    (Printf.sprintf
                       "fault %S: field %S: %S is not a non-negative decimal \
                        integer"
                       kind k (String.trim v))))
      (Ok ())
      (String.split_on_char ',' rest)
  in
  let* () =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        if Hashtbl.mem tbl k then Ok ()
        else Error (Printf.sprintf "fault %S: missing field %S" kind k))
      (Ok ()) keys
  in
  Ok (fun key -> Hashtbl.find tbl key)

let of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "fault %S: expected KIND:k=v,..." s)
  | Some i -> (
      let kind = String.trim (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "drop-arrive" ->
          let* get = parse_fields kind rest [ "warp"; "nth" ] in
          Ok (Drop_arrive { warp = get "warp"; nth = get "nth" })
      | "swap-bar" ->
          let* get = parse_fields kind rest [ "warp"; "nth"; "bar" ] in
          Ok
            (Swap_barrier
               { warp = get "warp"; nth = get "nth"; bar = get "bar" })
      | "extra-arrive" ->
          let* get = parse_fields kind rest [ "warp"; "nth" ] in
          Ok (Extra_arrive { warp = get "warp"; nth = get "nth" })
      | "latency" ->
          let* get = parse_fields kind rest [ "warp"; "mult" ] in
          Ok (Latency { warp = get "warp"; mult = get "mult" })
      | "corrupt-shfl" ->
          let* get = parse_fields kind rest [ "warp"; "nth" ] in
          Ok (Corrupt_shfl { warp = get "warp"; nth = get "nth" })
      | _ ->
          Error
            (Printf.sprintf
               "unknown fault kind %S (expected drop-arrive, swap-bar, \
                extra-arrive, latency or corrupt-shfl)"
               kind))

(* ---- application ---- *)

let check_warp fault n_warps warp =
  if warp < 0 || warp >= n_warps then
    invalid_arg
      (Printf.sprintf "fault %s: warp %d outside [0, %d)" (to_string fault)
         warp n_warps)

(* Remove, duplicate or rewrite the [nth] stream position (over prologue
   then body) whose entry satisfies [matches]. [rewrite] maps the matched
   entry id to [None] (drop), [Some [id]] (replace) or [Some [id; id]]
   (duplicate). *)
let edit_stream fault (tr : Trace.t) ~warp ~nth ~matches ~rewrite =
  let count = ref 0 in
  let found = ref false in
  let edit stream =
    if !found then stream
    else
      let out = ref [] in
      Array.iter
        (fun id ->
          if (not !found) && matches tr.Trace.entries.(id) then begin
            if !count = nth then begin
              found := true;
              match rewrite id with
              | None -> ()
              | Some ids -> List.iter (fun i -> out := i :: !out) ids
            end
            else out := id :: !out;
            incr count
          end
          else out := id :: !out)
        stream;
      if !found then Array.of_list (List.rev !out) else stream
  in
  let prologue = Array.copy tr.Trace.prologue in
  let body = Array.copy tr.Trace.body in
  prologue.(warp) <- edit prologue.(warp);
  body.(warp) <- edit body.(warp);
  if not !found then
    invalid_arg
      (Printf.sprintf
         "fault %s: warp %d has only %d matching instruction(s)"
         (to_string fault) warp !count);
  { tr with Trace.prologue; body }

let is_arrive (e : Trace.entry) =
  match e.Trace.instr with Some (Isa.Bar_arrive _) -> true | _ -> false

let is_named_bar (e : Trace.entry) =
  match e.Trace.instr with
  | Some (Isa.Bar_arrive _) | Some (Isa.Bar_sync _) -> true
  | _ -> false

let is_shuffle (e : Trace.entry) =
  match e.Trace.instr with
  | Some (Isa.Shfl _ | Isa.Ishfl _ | Isa.Shfl_rot _ | Isa.Shfl_bfly _) -> true
  | _ -> false

(* Perturb a shuffle's lane selector minimally but always observably:
   broadcasts and rotations read from the next lane over, butterflies
   flip the low mask bit. All results stay in [0, 32), so the corrupted
   instruction is still architecturally valid — the damage is silent
   data movement, exactly the class of fault the functional output check
   exists to catch (and PR 7's synthesized exchanges to avoid). *)
let corrupt_shuffle = function
  | Isa.Shfl { dst; src; lane } -> Isa.Shfl { dst; src; lane = (lane + 1) mod 32 }
  | Isa.Ishfl { dst_i; src_i; lane } ->
      Isa.Ishfl { dst_i; src_i; lane = (lane + 1) mod 32 }
  | Isa.Shfl_rot { dst; src; delta } ->
      Isa.Shfl_rot { dst; src; delta = (delta + 1) mod 32 }
  | Isa.Shfl_bfly { dst; src; xor_mask } ->
      Isa.Shfl_bfly { dst; src; xor_mask = xor_mask lxor 1 }
  | _ -> assert false

let apply_one (tr : Trace.t) fault =
  let n_warps = Array.length tr.Trace.body in
  match fault with
  | Drop_arrive { warp; nth } ->
      check_warp fault n_warps warp;
      edit_stream fault tr ~warp ~nth ~matches:is_arrive ~rewrite:(fun _ ->
          None)
  | Extra_arrive { warp; nth } ->
      check_warp fault n_warps warp;
      edit_stream fault tr ~warp ~nth ~matches:is_arrive ~rewrite:(fun id ->
          Some [ id; id ])
  | Swap_barrier { warp; nth; bar } ->
      check_warp fault n_warps warp;
      let fresh = ref None in
      let tr' =
        edit_stream fault tr ~warp ~nth ~matches:is_named_bar
          ~rewrite:(fun id ->
            let e = tr.Trace.entries.(id) in
            let instr =
              match e.Trace.instr with
              | Some (Isa.Bar_arrive { count; _ }) ->
                  Isa.Bar_arrive { bar; count }
              | Some (Isa.Bar_sync { count; _ }) -> Isa.Bar_sync { bar; count }
              | _ -> assert false
            in
            let id' = Array.length tr.Trace.entries in
            fresh := Some { e with Trace.instr = Some instr };
            Some [ id' ])
      in
      (match !fresh with
      | None -> tr'
      | Some e ->
          { tr' with Trace.entries = Array.append tr.Trace.entries [| e |] })
  | Corrupt_shfl { warp; nth } ->
      check_warp fault n_warps warp;
      let fresh = ref None in
      let tr' =
        edit_stream fault tr ~warp ~nth ~matches:is_shuffle
          ~rewrite:(fun id ->
            let e = tr.Trace.entries.(id) in
            let instr =
              match e.Trace.instr with
              | Some i -> corrupt_shuffle i
              | None -> assert false
            in
            let id' = Array.length tr.Trace.entries in
            (* Lane selectors are immediates: the perturbed copy keeps the
               entry's scoreboard operands, latency class and footprint. *)
            fresh := Some { e with Trace.instr = Some instr };
            Some [ id' ])
      in
      (match !fresh with
      | None -> tr'
      | Some e ->
          { tr' with Trace.entries = Array.append tr.Trace.entries [| e |] })
  | Latency { warp; mult } ->
      check_warp fault n_warps warp;
      if mult < 1 then
        invalid_arg
          (Printf.sprintf "fault %s: mult must be >= 1" (to_string fault));
      (* Rewrite every arith entry of the warp's streams to a perturbed
         copy; one copy per distinct entry id, so shared entries used by
         other warps keep their original latency. *)
      let copies = Hashtbl.create 16 in
      let extra = ref [] in
      let perturb id =
        let e = tr.Trace.entries.(id) in
        match e.Trace.instr with
        | Some (Isa.Arith _) -> (
            match Hashtbl.find_opt copies id with
            | Some id' -> id'
            | None ->
                let id' = Array.length tr.Trace.entries + List.length !extra in
                extra := { e with Trace.lat_mult = e.Trace.lat_mult * mult } :: !extra;
                Hashtbl.add copies id id';
                id')
        | _ -> id
      in
      let prologue = Array.copy tr.Trace.prologue in
      let body = Array.copy tr.Trace.body in
      prologue.(warp) <- Array.map perturb prologue.(warp);
      body.(warp) <- Array.map perturb body.(warp);
      if Hashtbl.length copies = 0 then
        invalid_arg
          (Printf.sprintf "fault %s: warp %d issues no arithmetic"
             (to_string fault) warp);
      {
        tr with
        Trace.entries =
          Array.append tr.Trace.entries
            (Array.of_list (List.rev !extra));
        prologue;
        body;
      }

let apply ?named_barriers faults tr =
  (* Range-check barrier ids up front: a [Swap_barrier] beyond the SM's
     named-barrier file used to truncate silently into whatever array
     the simulator indexed (or crash mid-simulation). *)
  List.iter
    (fun f ->
      match f with
      | Swap_barrier { bar; _ } ->
          let limit = Option.value named_barriers ~default:max_int in
          if bar < 0 || bar >= limit then
            invalid_arg
              (Printf.sprintf "fault %s: barrier id %d outside [0, %d)"
                 (to_string f) bar limit)
      | Drop_arrive _ | Extra_arrive _ | Latency _ | Corrupt_shfl _ -> ())
    faults;
  List.fold_left apply_one tr faults
