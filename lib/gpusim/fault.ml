(* Deterministic trace-level fault injection.

   Faults are applied to the flattened per-warp traces right before
   simulation, so the program artifact stays untouched and the same
   compiled kernel can be run clean and poisoned in one process. Each
   fault is pure: [apply] returns a fresh {!Trace.t} sharing unmodified
   entries with the input.

   Positions are counted over a warp's prologue followed by its body, in
   trace order, among the instructions the fault targets (barrier
   arrivals for [Drop_arrive]/[Extra_arrive], any named-barrier op for
   [Swap_barrier]). A fault that matches nothing raises
   [Invalid_argument] — silently injecting nothing would make a
   containment test vacuously pass. *)

type t =
  | Drop_arrive of { warp : int; nth : int }
  | Swap_barrier of { warp : int; nth : int; bar : int }
  | Extra_arrive of { warp : int; nth : int }
  | Latency of { warp : int; mult : int }

let to_string = function
  | Drop_arrive { warp; nth } ->
      Printf.sprintf "drop-arrive:warp=%d,nth=%d" warp nth
  | Swap_barrier { warp; nth; bar } ->
      Printf.sprintf "swap-bar:warp=%d,nth=%d,bar=%d" warp nth bar
  | Extra_arrive { warp; nth } ->
      Printf.sprintf "extra-arrive:warp=%d,nth=%d" warp nth
  | Latency { warp; mult } -> Printf.sprintf "latency:warp=%d,mult=%d" warp mult

let describe = function
  | Drop_arrive { warp; nth } ->
      Printf.sprintf "drop barrier arrival %d of warp %d" nth warp
  | Swap_barrier { warp; nth; bar } ->
      Printf.sprintf "retarget barrier op %d of warp %d to barrier %d" nth warp
        bar
  | Extra_arrive { warp; nth } ->
      Printf.sprintf "duplicate barrier arrival %d of warp %d" nth warp
  | Latency { warp; mult } ->
      Printf.sprintf "multiply warp %d arithmetic latencies by %d" warp mult

let of_string s =
  let fields kind rest =
    List.filter_map
      (fun kv ->
        match String.index_opt kv '=' with
        | None -> None
        | Some i -> (
            let k = String.sub kv 0 i in
            let v = String.sub kv (i + 1) (String.length kv - i - 1) in
            match int_of_string_opt (String.trim v) with
            | Some n -> Some (String.trim k, n)
            | None -> None))
      (String.split_on_char ',' rest)
    |> fun l ->
    fun key ->
      match List.assoc_opt key l with
      | Some v -> Ok v
      | None ->
          Error
            (Printf.sprintf "fault %S: missing or non-integer field %S" kind
               key)
  in
  let ( let* ) = Result.bind in
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "fault %S: expected KIND:k=v,..." s)
  | Some i -> (
      let kind = String.trim (String.sub s 0 i) in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let get = fields kind rest in
      match kind with
      | "drop-arrive" ->
          let* warp = get "warp" in
          let* nth = get "nth" in
          Ok (Drop_arrive { warp; nth })
      | "swap-bar" ->
          let* warp = get "warp" in
          let* nth = get "nth" in
          let* bar = get "bar" in
          Ok (Swap_barrier { warp; nth; bar })
      | "extra-arrive" ->
          let* warp = get "warp" in
          let* nth = get "nth" in
          Ok (Extra_arrive { warp; nth })
      | "latency" ->
          let* warp = get "warp" in
          let* mult = get "mult" in
          Ok (Latency { warp; mult })
      | _ ->
          Error
            (Printf.sprintf
               "unknown fault kind %S (expected drop-arrive, swap-bar, \
                extra-arrive or latency)"
               kind))

(* ---- application ---- *)

let check_warp fault n_warps warp =
  if warp < 0 || warp >= n_warps then
    invalid_arg
      (Printf.sprintf "fault %s: warp %d outside [0, %d)" (to_string fault)
         warp n_warps)

(* Remove, duplicate or rewrite the [nth] stream position (over prologue
   then body) whose entry satisfies [matches]. [rewrite] maps the matched
   entry id to [None] (drop), [Some [id]] (replace) or [Some [id; id]]
   (duplicate). *)
let edit_stream fault (tr : Trace.t) ~warp ~nth ~matches ~rewrite =
  let count = ref 0 in
  let found = ref false in
  let edit stream =
    if !found then stream
    else
      let out = ref [] in
      Array.iter
        (fun id ->
          if (not !found) && matches tr.Trace.entries.(id) then begin
            if !count = nth then begin
              found := true;
              match rewrite id with
              | None -> ()
              | Some ids -> List.iter (fun i -> out := i :: !out) ids
            end
            else out := id :: !out;
            incr count
          end
          else out := id :: !out)
        stream;
      if !found then Array.of_list (List.rev !out) else stream
  in
  let prologue = Array.copy tr.Trace.prologue in
  let body = Array.copy tr.Trace.body in
  prologue.(warp) <- edit prologue.(warp);
  body.(warp) <- edit body.(warp);
  if not !found then
    invalid_arg
      (Printf.sprintf
         "fault %s: warp %d has only %d matching instruction(s)"
         (to_string fault) warp !count);
  { tr with Trace.prologue; body }

let is_arrive (e : Trace.entry) =
  match e.Trace.instr with Some (Isa.Bar_arrive _) -> true | _ -> false

let is_named_bar (e : Trace.entry) =
  match e.Trace.instr with
  | Some (Isa.Bar_arrive _) | Some (Isa.Bar_sync _) -> true
  | _ -> false

let apply_one (tr : Trace.t) fault =
  let n_warps = Array.length tr.Trace.body in
  match fault with
  | Drop_arrive { warp; nth } ->
      check_warp fault n_warps warp;
      edit_stream fault tr ~warp ~nth ~matches:is_arrive ~rewrite:(fun _ ->
          None)
  | Extra_arrive { warp; nth } ->
      check_warp fault n_warps warp;
      edit_stream fault tr ~warp ~nth ~matches:is_arrive ~rewrite:(fun id ->
          Some [ id; id ])
  | Swap_barrier { warp; nth; bar } ->
      check_warp fault n_warps warp;
      let fresh = ref None in
      let tr' =
        edit_stream fault tr ~warp ~nth ~matches:is_named_bar
          ~rewrite:(fun id ->
            let e = tr.Trace.entries.(id) in
            let instr =
              match e.Trace.instr with
              | Some (Isa.Bar_arrive { count; _ }) ->
                  Isa.Bar_arrive { bar; count }
              | Some (Isa.Bar_sync { count; _ }) -> Isa.Bar_sync { bar; count }
              | _ -> assert false
            in
            let id' = Array.length tr.Trace.entries in
            fresh := Some { e with Trace.instr = Some instr };
            Some [ id' ])
      in
      (match !fresh with
      | None -> tr'
      | Some e ->
          { tr' with Trace.entries = Array.append tr.Trace.entries [| e |] })
  | Latency { warp; mult } ->
      check_warp fault n_warps warp;
      if mult < 1 then
        invalid_arg
          (Printf.sprintf "fault %s: mult must be >= 1" (to_string fault));
      (* Rewrite every arith entry of the warp's streams to a perturbed
         copy; one copy per distinct entry id, so shared entries used by
         other warps keep their original latency. *)
      let copies = Hashtbl.create 16 in
      let extra = ref [] in
      let perturb id =
        let e = tr.Trace.entries.(id) in
        match e.Trace.instr with
        | Some (Isa.Arith _) -> (
            match Hashtbl.find_opt copies id with
            | Some id' -> id'
            | None ->
                let id' = Array.length tr.Trace.entries + List.length !extra in
                extra := { e with Trace.lat_mult = e.Trace.lat_mult * mult } :: !extra;
                Hashtbl.add copies id id';
                id')
        | _ -> id
      in
      let prologue = Array.copy tr.Trace.prologue in
      let body = Array.copy tr.Trace.body in
      prologue.(warp) <- Array.map perturb prologue.(warp);
      body.(warp) <- Array.map perturb body.(warp);
      if Hashtbl.length copies = 0 then
        invalid_arg
          (Printf.sprintf "fault %s: warp %d issues no arithmetic"
             (to_string fault) warp);
      {
        tr with
        Trace.entries =
          Array.append tr.Trace.entries
            (Array.of_list (List.rev !extra));
        prologue;
        body;
      }

let apply faults tr = List.fold_left apply_one tr faults
