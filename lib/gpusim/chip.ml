(* Full-chip simulation: N per-SM simulations under a chip-level
   scheduler. The single-SM event-heap core ([Sm.run]) is reused
   unchanged as the per-SM engine; this layer adds the CTA dispatcher,
   the shared L2/DRAM bandwidth arbiter, and per-SM clock skew.

   Because every SM executes identical code on identically-shaped data
   (simulated cycles and counters never depend on float memory
   contents), only the *distinct round shapes* need cycle-accurate
   simulation: a full round of [resident] CTAs and, when the grid does
   not divide evenly, one tail round of [ctas mod resident] CTAs. The
   dispatcher then replays those shapes across SMs in a deterministic
   fluid event loop. *)

type launch = {
  program : Isa.program;
  total_points : int;
  ctas : int;
}

type occupancy = {
  resident_ctas : int;
  limited_by : string;
  warps_per_sm : int;
}

type reject_kind =
  | Regs_per_thread of { regs32 : int; limit : int }
  | Does_not_fit of { limited_by : string }

type reject = { program : string; arch : string; kind : reject_kind }

exception Occupancy_rejected of reject

let reject_message r =
  match r.kind with
  | Regs_per_thread { regs32; limit } ->
      Printf.sprintf
        "%s: %d registers per thread exceeds the %d limit on %s (the \
         compiler should have spilled)"
        r.program regs32 limit r.arch
  | Does_not_fit { limited_by } ->
      Printf.sprintf "%s does not fit on %s (limited by %s)" r.program r.arch
        limited_by

let () =
  Printexc.register_printer (function
    | Occupancy_rejected r -> Some ("occupancy rejected: " ^ reject_message r)
    | _ -> None)

let occupancy (arch : Arch.t) (p : Isa.program) =
  let regs32 = Isa.regs32_per_thread p in
  if regs32 > arch.Arch.max_regs_per_thread then
    raise
      (Occupancy_rejected
         {
           program = p.Isa.name;
           arch = arch.Arch.name;
           kind =
             Regs_per_thread
               { regs32; limit = arch.Arch.max_regs_per_thread };
         });
  let threads_per_cta = p.Isa.n_warps * 32 in
  let by_regs = arch.Arch.regfile_per_sm / max 1 (regs32 * threads_per_cta) in
  let shared_bytes = p.Isa.shared_doubles * 8 in
  let by_shared =
    if shared_bytes = 0 then max_int else arch.Arch.shared_bytes_per_sm / shared_bytes
  in
  let by_warps = arch.Arch.max_warps_per_sm / p.Isa.n_warps in
  let by_bars =
    if p.Isa.barriers_used = 0 then max_int
    else arch.Arch.named_barriers_per_sm / p.Isa.barriers_used
  in
  let limits =
    [
      ("registers", by_regs);
      ("shared memory", by_shared);
      ("warp slots", by_warps);
      ("named barriers", by_bars);
      ("CTA slots", arch.Arch.max_ctas_per_sm);
    ]
  in
  let limited_by, resident =
    List.fold_left
      (fun (ln, lv) (n, v) -> if v < lv then (n, v) else (ln, lv))
      ("CTA slots", arch.Arch.max_ctas_per_sm)
      limits
  in
  if resident < 1 then
    raise
      (Occupancy_rejected
         {
           program = p.Isa.name;
           arch = arch.Arch.name;
           kind = Does_not_fit { limited_by };
         });
  {
    resident_ctas = resident;
    limited_by;
    warps_per_sm = resident * p.Isa.n_warps;
  }

let points_per_cta (l : launch) =
  assert (l.total_points mod l.ctas = 0);
  l.total_points / l.ctas

let batches_per_cta (l : launch) =
  let per_batch =
    match l.program.Isa.point_map with
    | Isa.Coop -> 32
    | Isa.Thread_per_point -> l.program.Isa.n_warps * 32
  in
  let ppc = points_per_cta l in
  assert (ppc mod per_batch = 0);
  ppc / per_batch

(* ------------------------------------------------------------------ *)
(* Chip-level scheduler: greedy CTA dispatch + fluid bandwidth arbiter *)
(* ------------------------------------------------------------------ *)

type sm_stat = {
  sm_ctas : int;
  sm_rounds : int;
  sm_finish : float;
  sm_busy : float;
}

type contention = {
  dram_peak_bpc : float;
  demand_peak_bpc : float;
  throttle_max : float;
  dram_util : float;
  spill_in_l2 : bool;
}

type schedule = {
  sms : sm_stat array;
  contention : contention;
  makespan_cycles : float;
  tail_ctas : int;
  rounds_total : int;
  n_sms : int;
  skew : float;
}

let clock_factor ~n_sms ~skew i =
  if n_sms <= 1 then 1.0
  else 1.0 +. (skew *. ((float_of_int i /. float_of_int (n_sms - 1)) -. 0.5))

let schedule ~n_sms ~skew ~resident ~ctas ~round_cycles ~round_dram_bytes
    ~dram_peak_bpc ~spill_in_l2 =
  if n_sms < 1 then invalid_arg "Chip.schedule: n_sms must be >= 1";
  if resident < 1 then invalid_arg "Chip.schedule: resident must be >= 1";
  if Float.abs skew >= 2.0 then
    invalid_arg "Chip.schedule: |skew| must be < 2 (clock factors must stay positive)";
  let remaining = ref ctas in
  let rem_cycles = Array.make n_sms 0.0 in
  let rate_bytes = Array.make n_sms 0.0 in
  let ctas_run = Array.make n_sms 0 in
  let rounds = Array.make n_sms 0 in
  let busy = Array.make n_sms 0.0 in
  let finish = Array.make n_sms 0.0 in
  let rounds_total = ref 0 in
  let total_bytes = ref 0.0 in
  (* Greedy pull: a draining SM takes the next [resident] CTAs (or the
     remainder). Iteration is always in SM-id order, so simultaneous
     drains resolve deterministically: the lowest id pulls first. *)
  let pull sm =
    if !remaining > 0 then begin
      let k = min resident !remaining in
      remaining := !remaining - k;
      ctas_run.(sm) <- ctas_run.(sm) + k;
      rounds.(sm) <- rounds.(sm) + 1;
      incr rounds_total;
      let c = round_cycles k in
      let b = round_dram_bytes k in
      rem_cycles.(sm) <- Float.max c 1e-9;
      rate_bytes.(sm) <- (if c > 0.0 then b /. c else 0.0);
      total_bytes := !total_bytes +. b
    end
  in
  for i = 0 to n_sms - 1 do
    pull i
  done;
  let now = ref 0.0 in
  let throttle_max = ref 1.0 in
  let demand_peak = ref 0.0 in
  let running = ref true in
  (* Fluid event loop: between round completions every active SM
     progresses at [clock_factor / throttle] nominal round-cycles per
     reference cycle, where the common throttle stretches all memory
     stalls once summed demand exceeds the DRAM budget. Each iteration
     retires at least one round, so the loop runs exactly
     [ceil(ctas/resident)] pulls. *)
  while !running do
    let demand = ref 0.0 in
    let any = ref false in
    for i = 0 to n_sms - 1 do
      if rem_cycles.(i) > 0.0 then begin
        any := true;
        demand := !demand +. (rate_bytes.(i) *. clock_factor ~n_sms ~skew i)
      end
    done;
    if not !any then running := false
    else begin
      let throttle =
        if dram_peak_bpc > 0.0 then Float.max 1.0 (!demand /. dram_peak_bpc)
        else 1.0
      in
      throttle_max := Float.max !throttle_max throttle;
      demand_peak := Float.max !demand_peak !demand;
      let dt = ref infinity in
      for i = 0 to n_sms - 1 do
        if rem_cycles.(i) > 0.0 then begin
          let rate = clock_factor ~n_sms ~skew i /. throttle in
          dt := Float.min !dt (rem_cycles.(i) /. rate)
        end
      done;
      let dt = !dt in
      now := !now +. dt;
      for i = 0 to n_sms - 1 do
        if rem_cycles.(i) > 0.0 then begin
          let rate = clock_factor ~n_sms ~skew i /. throttle in
          let left = rem_cycles.(i) -. (dt *. rate) in
          busy.(i) <- busy.(i) +. dt;
          if left <= 1e-9 *. (1.0 +. rem_cycles.(i)) then begin
            rem_cycles.(i) <- 0.0;
            finish.(i) <- !now;
            pull i
          end
          else rem_cycles.(i) <- left
        end
      done
    end
  done;
  let makespan = !now in
  let dram_util =
    if makespan > 0.0 && dram_peak_bpc > 0.0 then
      !total_bytes /. (makespan *. dram_peak_bpc)
    else 0.0
  in
  {
    sms =
      Array.init n_sms (fun i ->
          {
            sm_ctas = ctas_run.(i);
            sm_rounds = rounds.(i);
            sm_finish = finish.(i);
            sm_busy = busy.(i);
          });
    contention =
      {
        dram_peak_bpc;
        demand_peak_bpc = !demand_peak;
        throttle_max = !throttle_max;
        dram_util;
        spill_in_l2;
      };
    makespan_cycles = makespan;
    tail_ctas = (if ctas > resident then ctas mod resident else 0);
    rounds_total = !rounds_total;
    n_sms;
    skew;
  }

let cycle_spread s =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun st ->
      if st.sm_ctas > 0 then begin
        lo := Float.min !lo st.sm_finish;
        hi := Float.max !hi st.sm_finish
      end)
    s.sms;
  if !hi > !lo then !hi -. !lo else 0.0

let dispatch_imbalance s =
  let total = Array.fold_left (fun a st -> a + st.sm_ctas) 0 s.sms in
  if total = 0 then 0.0
  else begin
    let mean = float_of_int total /. float_of_int s.n_sms in
    let mx = Array.fold_left (fun a st -> max a st.sm_ctas) 0 s.sms in
    (float_of_int mx /. mean) -. 1.0
  end

(* ------------------------------------------------------------------ *)
(* Whole-launch simulation                                             *)
(* ------------------------------------------------------------------ *)

type result = {
  occ : occupancy;
  waves : float;
  sm_cycles : int;
  time_s : float;
  points_per_sec : float;
  gflops : float;
  dram_gbs : float;
  local_gbs : float;
  sim : Sm.result;
  tail_sim : Sm.result option;
  mem : Memstate.t;
  simulated_points : int;
  chip : schedule;
}

(* Pin-run extrapolation: after the first couple of batches warm the
   caches, the per-batch cost settles into a steady state — but not
   necessarily a constant one: memory phase (e.g. DRAM row alignment
   against the streaming global addresses) can make it alternate with
   the parity of the batch index. The pin run therefore simulates TWO
   batches fewer than the main run, so the difference pins one full
   period of the steady cost, and the caller keeps the remaining
   [batches - sim_batches] even so whole periods extrapolate exactly.
   (Pinning from a 1-batch run instead would average the warm-up
   transient into the body and drift on long launches.) *)
let extrapolate ~batches ~sim_batches ~(sim : Sm.result)
    ~(sim_prev : Sm.result) =
  let body2 = float_of_int (sim.Sm.cycles - sim_prev.Sm.cycles) in
  float_of_int sim.Sm.cycles
  +. (body2 *. float_of_int ((batches - sim_batches) / 2))

let run ?(fill_inputs = fun _ _ -> ()) ?(max_sim_batches = 6) ?(faults = [])
    ?max_cycles ?profile ?n_sms ?skew (arch : Arch.t) (l : launch) =
  let occ = occupancy arch l.program in
  let n_sms = match n_sms with Some n -> n | None -> arch.Arch.n_sms in
  let skew = match skew with Some s -> s | None -> arch.Arch.sm_clock_skew in
  if n_sms < 1 then invalid_arg "Chip.run: n_sms must be >= 1";
  let resident = min occ.resident_ctas l.ctas in
  let batches = batches_per_cta l in
  let per_batch =
    match l.program.Isa.point_map with
    | Isa.Coop -> 32
    | Isa.Thread_per_point -> l.program.Isa.n_warps * 32
  in
  (* The steady-state pin pair needs two batch counts, so extrapolated
     launches always simulate at least two batches; when extrapolating,
     the pin run covers [sim_batches - 2] batches (one full period of a
     possibly parity-alternating steady cost), so the main run needs at
     least three and [batches - sim_batches] must stay even. *)
  let max_sim_batches = max 2 max_sim_batches in
  let sim_batches =
    if batches <= max_sim_batches then batches
    else begin
      let s = max 3 (min batches max_sim_batches) in
      if (batches - s) mod 2 = 0 then s
      else if s - 1 >= 3 then s - 1
      else min batches (s + 1)
    end
  in
  let simulated_points = resident * per_batch * sim_batches in
  let mem =
    Memstate.create l.program ~n_points:simulated_points ~resident_ctas:resident
  in
  fill_inputs mem simulated_points;
  (* All secondary simulations (the 1-batch pin runs and the tail round)
     reuse a prefix of the inputs just filled instead of calling
     [fill_inputs] again: simulated cycles and counters are independent
     of float memory contents (addresses and stall times only ever
     derive from static program data), and secondary functional outputs
     are discarded. Snapshot the prefixes now, before the main
     simulation overwrites output fields. *)
  let prefix_mem ~n_points ~resident_ctas =
    let m = Memstate.create l.program ~n_points ~resident_ctas in
    Memstate.copy_global_prefix ~src:mem ~dst:m;
    m
  in
  let pin_batches = sim_batches - 2 in
  let pin_mem =
    if batches <= sim_batches then None
    else
      Some
        (prefix_mem
           ~n_points:(resident * per_batch * pin_batches)
           ~resident_ctas:resident)
  in
  let tail = if l.ctas > resident then l.ctas mod resident else 0 in
  let tail_mem =
    if tail = 0 then None
    else Some (prefix_mem ~n_points:(tail * per_batch * sim_batches) ~resident_ctas:tail)
  in
  let tail_pin_mem =
    if tail = 0 || batches <= sim_batches then None
    else
      Some
        (prefix_mem
           ~n_points:(tail * per_batch * pin_batches)
           ~resident_ctas:tail)
  in
  let trace =
    Fault.apply ~named_barriers:arch.Arch.named_barriers_per_sm faults
      (Trace.flatten arch l.program)
  in
  let job_of ~mem ~resident_ctas ~batches =
    {
      Sm.arch;
      program = l.program;
      trace;
      mem;
      resident_ctas;
      batches;
      cta_point_base =
        Array.init resident_ctas (fun c -> c * per_batch * batches);
    }
  in
  (* The profiler rides only the main simulation; the pin and tail runs
     exist purely to extrapolate cycle counts and pin tail-round cost. *)
  let sim =
    Sm.run ?max_cycles ?profile
      (job_of ~mem ~resident_ctas:resident ~batches:sim_batches)
  in
  let cycles_full =
    match pin_mem with
    | None -> float_of_int sim.Sm.cycles
    | Some mem1 ->
        let sim_prev =
          Sm.run ?max_cycles
            (job_of ~mem:mem1 ~resident_ctas:resident ~batches:pin_batches)
        in
        extrapolate ~batches ~sim_batches ~sim ~sim_prev
  in
  let tail_sim, tail_cycles_full =
    match tail_mem with
    | None -> (None, 0.0)
    | Some tmem ->
        let ts =
          Sm.run ?max_cycles (job_of ~mem:tmem ~resident_ctas:tail ~batches:sim_batches)
        in
        let tc =
          match tail_pin_mem with
          | None -> float_of_int ts.Sm.cycles
          | Some tm1 ->
              let ts1 =
                Sm.run ?max_cycles
                  (job_of ~mem:tm1 ~resident_ctas:tail ~batches:pin_batches)
              in
              extrapolate ~batches ~sim_batches ~sim:ts ~sim_prev:ts1
        in
        (Some ts, tc)
  in
  (* Shared-resource model: spill (local-memory) traffic is
     re-referenced every batch, so when the aggregate spill working set
     fits in L2 it is served there and never reaches DRAM; tex/global
     streaming traffic is all compulsory misses and always counts. *)
  let spill_working_set =
    n_sms * resident * l.program.Isa.n_warps * 32
    * l.program.Isa.local_doubles * 8
  in
  let spill_in_l2 =
    l.program.Isa.local_doubles > 0 && spill_working_set <= arch.Arch.l2_bytes
  in
  let batch_scale = float_of_int batches /. float_of_int sim_batches in
  let dram_bytes_of (s : Sm.result) =
    let c = s.Sm.counters in
    let b = c.Sm.tex_bytes + c.Sm.global_bytes in
    let b = if spill_in_l2 then b else b + c.Sm.local_bytes in
    float_of_int b *. batch_scale
  in
  let main_round_bytes = dram_bytes_of sim in
  let tail_round_bytes =
    match tail_sim with Some ts -> dram_bytes_of ts | None -> 0.0
  in
  let round_cycles k = if k = resident then cycles_full else tail_cycles_full in
  let round_dram_bytes k =
    if k = resident then main_round_bytes else tail_round_bytes
  in
  let sched =
    schedule ~n_sms ~skew ~resident ~ctas:l.ctas ~round_cycles
      ~round_dram_bytes
      ~dram_peak_bpc:(Arch.dram_bytes_per_chip_cycle arch)
      ~spill_in_l2
  in
  let waves =
    Float.max (float_of_int l.ctas /. float_of_int (resident * n_sms)) 1.0
  in
  let time_s = sched.makespan_cycles /. (arch.Arch.clock_mhz *. 1e6) in
  let points_per_sec = float_of_int l.total_points /. time_s in
  (* The simulated SM-round covers [resident * per_batch * sim_batches]
     points; totals extrapolate by the point ratio (flops and bytes are
     proportional to points across every round, tail included). *)
  let scale = float_of_int l.total_points /. float_of_int simulated_points in
  let gflops =
    float_of_int sim.Sm.counters.Sm.flops *. scale /. time_s /. 1e9
  in
  let bytes path = float_of_int path *. scale /. time_s /. 1e9 in
  let dram_gbs =
    bytes
      (sim.Sm.counters.Sm.tex_bytes + sim.Sm.counters.Sm.global_bytes
     + sim.Sm.counters.Sm.local_bytes)
  in
  let local_gbs = bytes sim.Sm.counters.Sm.local_bytes in
  {
    occ;
    waves;
    sm_cycles = sim.Sm.cycles;
    time_s;
    points_per_sec;
    gflops;
    dram_gbs;
    local_gbs;
    sim;
    tail_sim;
    mem;
    simulated_points;
    chip = sched;
  }
