(** Static program analysis: instruction mix, code footprint, and per-warp
    breakdowns of a lowered {!Isa.program}.

    Everything here is static (no simulation): counts are per executed-path
    occurrence in the block tree, with [Switch_warp] and [If_warps] arms
    attributed to the warps that execute them. Used by the [singe_cli
    stats] command, the roofline report, and the instruction-mix tests. *)

type mix = {
  dp_arith : int;  (** Add/Sub/Mul/Fma/Neg/Max/Min *)
  dp_special : int;  (** Div/Sqrt/Exp/Log (multi-slot) *)
  global_mem : int;  (** global loads + stores *)
  shared_mem : int;  (** shared loads + stores *)
  local_mem : int;  (** spill stores + reloads *)
  const_loads : int;  (** prologue bank/param loads *)
  shuffles : int;
  barriers : int;  (** named arrive/sync + CTA barriers *)
  moves : int;
  total : int;
}

val empty_mix : mix
val add_mix : mix -> mix -> mix

val mix_of_block : Isa.block -> mix
(** Whole-tree static mix (every instruction once, regardless of mask). *)

val shared_bytes_of_instr : Isa.instr -> int
(** Shared-memory bytes one warp moves executing the instruction once:
    8 bytes per active lane for lane-striped loads/stores, 8 for a uniform
    broadcast, and the same accounting for [Sshared] operands embedded in
    arithmetic/moves/stores (the collector-less shared-pipe traffic the
    exchange synthesizer removes). *)

val shared_bytes_of_program : Isa.program -> int
(** Shared-traffic bytes per body pass, summed across the warps that
    execute each instruction (mask-aware). *)

type per_warp = {
  warp : int;
  instrs : int;  (** instructions this warp executes per body pass *)
  flops : int;  (** per-lane FLOPs this warp contributes *)
  code_bytes : int;  (** static footprint of the blocks it fetches *)
}

val per_warp_of_program : Arch.t -> Isa.program -> per_warp array
(** Per-warp execution and fetch footprint. A warp {e fetches} every block
    it reaches, including [If_warps] bodies it skips (the branch itself);
    the [instrs]/[flops] columns count only what it executes. *)

type t = {
  mix : mix;
  body_bytes : int;  (** static code bytes of the body *)
  prologue_bytes : int;
  flops_per_point : float;  (** per grid point, SASS-style counting *)
  shared_bytes : int;  (** shared-traffic bytes per body pass (all warps) *)
  warps : per_warp array;
  imbalance : float;  (** max/min executed instructions across warps *)
}

val of_program : Arch.t -> Isa.program -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)
