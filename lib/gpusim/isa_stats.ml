type mix = {
  dp_arith : int;
  dp_special : int;
  global_mem : int;
  shared_mem : int;
  local_mem : int;
  const_loads : int;
  shuffles : int;
  barriers : int;
  moves : int;
  total : int;
}

let empty_mix =
  {
    dp_arith = 0;
    dp_special = 0;
    global_mem = 0;
    shared_mem = 0;
    local_mem = 0;
    const_loads = 0;
    shuffles = 0;
    barriers = 0;
    moves = 0;
    total = 0;
  }

let add_mix a b =
  {
    dp_arith = a.dp_arith + b.dp_arith;
    dp_special = a.dp_special + b.dp_special;
    global_mem = a.global_mem + b.global_mem;
    shared_mem = a.shared_mem + b.shared_mem;
    local_mem = a.local_mem + b.local_mem;
    const_loads = a.const_loads + b.const_loads;
    shuffles = a.shuffles + b.shuffles;
    barriers = a.barriers + b.barriers;
    moves = a.moves + b.moves;
    total = a.total + b.total;
  }

let mix_of_instr (i : Isa.instr) =
  let one field = { empty_mix with total = 1 } |> field in
  match i with
  | Isa.Arith { op; _ } -> (
      match op with
      | Isa.Div | Isa.Sqrt | Isa.Exp | Isa.Log ->
          one (fun m -> { m with dp_special = 1 })
      | Isa.Add | Isa.Sub | Isa.Mul | Isa.Fma | Isa.Max | Isa.Min | Isa.Neg ->
          one (fun m -> { m with dp_arith = 1 }))
  | Isa.Mov _ -> one (fun m -> { m with moves = 1 })
  | Isa.Ld_global _ | Isa.St_global _ -> one (fun m -> { m with global_mem = 1 })
  | Isa.Ld_shared _ | Isa.St_shared _ -> one (fun m -> { m with shared_mem = 1 })
  | Isa.Ld_local _ | Isa.St_local _ -> one (fun m -> { m with local_mem = 1 })
  | Isa.Ld_const_bank _ | Isa.Ld_param _ ->
      one (fun m -> { m with const_loads = 1 })
  | Isa.Shfl _ | Isa.Ishfl _ | Isa.Shfl_rot _ | Isa.Shfl_bfly _ ->
      one (fun m -> { m with shuffles = 1 })
  | Isa.Bar_arrive _ | Isa.Bar_sync _ | Isa.Bar_cta ->
      one (fun m -> { m with barriers = 1 })

let mix_of_block block =
  let acc = ref empty_mix in
  Isa.iter_instrs block (fun i -> acc := add_mix !acc (mix_of_instr i));
  !acc

(* Shared-memory bytes one warp moves executing the instruction once:
   lane-striped accesses touch one double per active lane, uniform
   addresses are a single broadcast word. Shared operands of arithmetic
   count too — on collector-less architectures they occupy the shared
   pipe exactly like an explicit load. *)
let shared_bytes_of_instr (i : Isa.instr) =
  let active = function
    | Some (Isa.Lane_eq _) -> 1
    | Some (Isa.Lane_lt n) -> n
    | None -> 32
  in
  let addr_bytes (a : Isa.saddr) pred =
    8 * (if a.Isa.s_lane_mul <> 0 then active pred else 1)
  in
  let src_bytes pred = function
    | Isa.Sshared a -> addr_bytes a pred
    | _ -> 0
  in
  match i with
  | Isa.Ld_shared { addr; pred; _ } -> addr_bytes addr pred
  | Isa.St_shared { src; addr; pred } ->
      addr_bytes addr pred + src_bytes pred src
  | Isa.Arith { srcs; pred; _ } ->
      Array.fold_left (fun acc s -> acc + src_bytes pred s) 0 srcs
  | Isa.Mov { src; pred; _ } -> src_bytes pred src
  | Isa.St_global { src; pred; _ } -> src_bytes pred src
  | _ -> 0

let shared_bytes_of_program (p : Isa.program) =
  let pop mask =
    let n = ref 0 in
    let m = ref mask in
    while !m <> 0 do
      n := !n + (!m land 1);
      m := !m lsr 1
    done;
    !n
  in
  let total = ref 0 in
  let rec go exec = function
    | Isa.Instrs l ->
        List.iter
          (fun i -> total := !total + (pop exec * shared_bytes_of_instr i))
          l
    | Isa.Seq bs -> List.iter (go exec) bs
    | Isa.If_warps { mask; body } -> go (exec land mask) body
    | Isa.Switch_warp arms ->
        Array.iteri
          (fun w arm ->
            let m = exec land (1 lsl w) in
            if m <> 0 then go m arm)
          arms
  in
  go ((1 lsl p.Isa.n_warps) - 1) p.Isa.body;
  !total

type per_warp = { warp : int; instrs : int; flops : int; code_bytes : int }

let per_warp_of_program (arch : Arch.t) (p : Isa.program) =
  let n = p.Isa.n_warps in
  let instrs = Array.make n 0 in
  let flops = Array.make n 0 in
  let bytes = Array.make n 0 in
  let each_warp mask f =
    for w = 0 to n - 1 do
      if mask land (1 lsl w) <> 0 then f w
    done
  in
  let full = (1 lsl n) - 1 in
  (* exec_mask: warps that execute; fetch_mask: warps that stream the code
     through their fetch path (an If_warps body is fetched even by warps
     whose bit is clear — they fall through it). *)
  let rec go exec_mask fetch_mask = function
    | Isa.Instrs l ->
        List.iter
          (fun i ->
            let b = Isa.static_bytes arch i in
            each_warp fetch_mask (fun w -> bytes.(w) <- bytes.(w) + b);
            each_warp exec_mask (fun w ->
                instrs.(w) <- instrs.(w) + 1;
                match i with
                | Isa.Arith { op; _ } -> flops.(w) <- flops.(w) + Isa.fop_flops op
                | _ -> ()))
          l
    | Isa.Seq bs -> List.iter (go exec_mask fetch_mask) bs
    | Isa.If_warps { mask; body } ->
        go (exec_mask land mask) fetch_mask body
    | Isa.Switch_warp arms ->
        Array.iteri
          (fun w arm ->
            let m = exec_mask land (1 lsl w) in
            (* an indirect branch: each warp fetches only its own arm *)
            if m <> 0 then go m m arm)
          arms
  in
  go full full p.Isa.body;
  Array.init n (fun w ->
      { warp = w; instrs = instrs.(w); flops = flops.(w); code_bytes = bytes.(w) })

type t = {
  mix : mix;
  body_bytes : int;
  prologue_bytes : int;
  flops_per_point : float;
  shared_bytes : int;
  warps : per_warp array;
  imbalance : float;
}

let block_bytes arch block =
  let acc = ref 0 in
  Isa.iter_instrs block (fun i -> acc := !acc + Isa.static_bytes arch i);
  !acc

let of_program arch (p : Isa.program) =
  let warps = per_warp_of_program arch p in
  let total_flops =
    Array.fold_left (fun a w -> a + w.flops) 0 warps * 32
  in
  let points_per_batch =
    match p.Isa.point_map with
    | Isa.Coop -> 32
    | Isa.Thread_per_point -> p.Isa.n_warps * 32
  in
  let mx = Array.fold_left (fun a w -> max a w.instrs) 0 warps in
  let mn = Array.fold_left (fun a w -> min a w.instrs) max_int warps in
  {
    mix = mix_of_block p.Isa.body;
    body_bytes = block_bytes arch p.Isa.body;
    prologue_bytes = block_bytes arch p.Isa.prologue;
    flops_per_point = float_of_int total_flops /. float_of_int points_per_batch;
    shared_bytes = shared_bytes_of_program p;
    warps;
    imbalance = float_of_int mx /. float_of_int (max 1 mn);
  }

let pp ppf t =
  let m = t.mix in
  let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 m.total) in
  Format.fprintf ppf
    "@[<v>instruction mix (%d body instructions):@,\
    \  DP arith     %5d  (%4.1f%%)@,\
    \  DP special   %5d  (%4.1f%%)@,\
    \  global mem   %5d  (%4.1f%%)@,\
    \  shared mem   %5d  (%4.1f%%)@,\
    \  local/spill  %5d  (%4.1f%%)@,\
    \  const loads  %5d  (%4.1f%%)@,\
    \  shuffles     %5d  (%4.1f%%)@,\
    \  barriers     %5d  (%4.1f%%)@,\
    \  moves        %5d  (%4.1f%%)@,\
     code: body %d B, prologue %d B; %.0f FLOPs/point; warp imbalance %.2f@,\
     shared traffic: %d B per body pass@,"
    m.total m.dp_arith (pct m.dp_arith) m.dp_special (pct m.dp_special)
    m.global_mem (pct m.global_mem) m.shared_mem (pct m.shared_mem)
    m.local_mem (pct m.local_mem) m.const_loads (pct m.const_loads)
    m.shuffles (pct m.shuffles) m.barriers (pct m.barriers) m.moves
    (pct m.moves) t.body_bytes t.prologue_bytes t.flops_per_point t.imbalance
    t.shared_bytes;
  Array.iter
    (fun w ->
      Format.fprintf ppf "  warp %2d: %5d instrs, %6d flops, %5d code B@," w.warp
        w.instrs w.flops w.code_bytes)
    t.warps;
  Format.fprintf ppf "@]"
