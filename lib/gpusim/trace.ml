type entry = {
  instr : Isa.instr option;
  addr : int;
  srcs : Isa.src array;
  shared_srcs : Isa.saddr array;
  has_const : bool;
  lat_mult : int;
  dp_slots : float;
  flops : int;
}

type t = {
  entries : entry array;
  prologue : int array array;
  body : int array array;
  code_bytes : int;
  max_srcs : int;
}

let no_srcs : Isa.src array = [||]
let no_shared : Isa.saddr array = [||]

(* Per-entry issue metadata, computed once here so [Sm.try_issue] does no
   per-issue pattern-matching re-work and allocates nothing: the
   scoreboard source operands (singleton operands of Mov/St_* get their
   array built once), the shared-memory operands among them, whether any
   operand reads the constant cache, and the arith op's latency
   multiplier / DP-slot / FLOP figures. Entries are shared by every warp
   and batch, so everything here must be warp-independent (it is). *)
let meta_of instr =
  match instr with
  | Some (Isa.Arith { op; srcs; _ }) ->
      let shared_srcs =
        Array.of_list
          (List.filter_map
             (function Isa.Sshared a -> Some a | _ -> None)
             (Array.to_list srcs))
      in
      let has_const =
        Array.exists
          (function Isa.Sconst _ | Isa.Sconst_warp _ -> true | _ -> false)
          srcs
      in
      (srcs, shared_srcs, has_const, Isa.fop_lat_mult op,
       Isa.fop_dp_slots op, Isa.fop_flops op)
  | Some (Isa.Mov { src; _ }) | Some (Isa.St_global { src; _ })
  | Some (Isa.St_shared { src; _ }) ->
      let shared_srcs =
        match src with Isa.Sshared a -> [| a |] | _ -> no_shared
      in
      let has_const =
        match src with Isa.Sconst _ | Isa.Sconst_warp _ -> true | _ -> false
      in
      ([| src |], shared_srcs, has_const, 1, 0.0, 0)
  | Some
      ( Isa.Ld_global _ | Isa.Ld_shared _ | Isa.Ld_local _ | Isa.St_local _
      | Isa.Ld_const_bank _ | Isa.Ld_param _ | Isa.Shfl _ | Isa.Ishfl _
      | Isa.Shfl_rot _ | Isa.Shfl_bfly _
      | Isa.Bar_arrive _ | Isa.Bar_sync _ | Isa.Bar_cta )
  | None ->
      (no_srcs, no_shared, false, 1, 0.0, 0)

let flatten (arch : Arch.t) (p : Isa.program) =
  let entries = ref [] in
  let n_entries = ref 0 in
  let addr = ref 0 in
  let push instr bytes =
    let id = !n_entries in
    let srcs, shared_srcs, has_const, lat_mult, dp_slots, flops =
      meta_of instr
    in
    entries :=
      { instr; addr = !addr; srcs; shared_srcs; has_const; lat_mult;
        dp_slots; flops }
      :: !entries;
    incr n_entries;
    addr := !addr + bytes;
    id
  in
  let traces = Array.make p.Isa.n_warps [] in
  let add_to warps id =
    List.iter (fun w -> traces.(w) <- id :: traces.(w)) warps
  in
  let rec walk warps block =
    match block with
    | Isa.Instrs l ->
        List.iter
          (fun i -> add_to warps (push (Some i) (Isa.static_bytes arch i)))
          l
    | Isa.Seq bs -> List.iter (walk warps) bs
    | Isa.If_warps { mask; body } ->
        (* Every arriving warp executes the branch test. *)
        add_to warps (push None arch.Arch.instr_bytes);
        let inside = List.filter (fun w -> mask land (1 lsl w) <> 0) warps in
        walk inside body
    | Isa.Switch_warp bodies ->
        add_to warps (push None arch.Arch.instr_bytes);
        Array.iteri
          (fun w b ->
            if List.mem w warps then walk [ w ] b
            else
              (* Code for absent warps still occupies address space. *)
              walk [] b)
          bodies
  in
  let all = List.init p.Isa.n_warps Fun.id in
  walk all p.Isa.prologue;
  let pro_marks = Array.map List.length traces in
  walk all p.Isa.body;
  let entries = Array.of_list (List.rev !entries) in
  let split w =
    let full = Array.of_list (List.rev traces.(w)) in
    let n_pro = pro_marks.(w) in
    ( Array.sub full 0 n_pro,
      Array.sub full n_pro (Array.length full - n_pro) )
  in
  let per_warp = Array.init p.Isa.n_warps split in
  let max_srcs =
    Array.fold_left (fun acc e -> max acc (Array.length e.srcs)) 0 entries
  in
  {
    entries;
    prologue = Array.map fst per_warp;
    body = Array.map snd per_warp;
    code_bytes = !addr;
    max_srcs;
  }

let body_footprint_bytes t ~warp =
  let lines = Hashtbl.create 64 in
  let bytes = ref 0 in
  Array.iter
    (fun id ->
      let e = t.entries.(id) in
      if not (Hashtbl.mem lines e.addr) then begin
        Hashtbl.add lines e.addr ();
        let next =
          if id + 1 < Array.length t.entries then t.entries.(id + 1).addr
          else e.addr + 8
        in
        bytes := !bytes + (next - e.addr)
      end)
    t.body.(warp);
  !bytes

type cursor = { mutable phase : int; mutable pos : int; mutable batch : int }

let cursor () = { phase = 0; pos = 0; batch = 0 }

let rec peek t ~warp ~batches c =
  match c.phase with
  | 0 ->
      if c.pos < Array.length t.prologue.(warp) then
        Some t.prologue.(warp).(c.pos)
      else begin
        c.phase <- 1;
        c.pos <- 0;
        c.batch <- 0;
        peek t ~warp ~batches c
      end
  | 1 ->
      if batches = 0 then begin
        c.phase <- 2;
        None
      end
      else if c.pos < Array.length t.body.(warp) then Some t.body.(warp).(c.pos)
      else if c.batch + 1 < batches then begin
        c.batch <- c.batch + 1;
        c.pos <- 0;
        peek t ~warp ~batches c
      end
      else begin
        c.phase <- 2;
        None
      end
  | _ -> None

let advance t ~warp ~batches c =
  match peek t ~warp ~batches c with
  | Some _ -> c.pos <- c.pos + 1
  | None -> ()
