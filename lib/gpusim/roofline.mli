(** Static roofline analysis: upper bounds on a program's throughput from
    each machine resource, and the binding one.

    Bounds are computed from the static per-batch instruction counts of
    {!Isa_stats} and the architecture's issue/bandwidth parameters — no
    simulation. The simulator should never beat a bound by more than its
    timing noise; the bound/achieved ratio says which resource a kernel is
    actually limited by (the §6 arguments: viscosity math-bound, baseline
    chemistry spill-bandwidth-bound, warp-specialized chemistry
    synchronization-bound). *)

type bound = {
  resource : string;  (** e.g. "DP pipe", "local-memory path" *)
  points_per_sec : float;  (** throughput ceiling from this resource alone *)
}

type t = {
  bounds : bound list;  (** sorted, tightest first *)
  binding : bound;  (** the minimum *)
  occupancy : Machine.occupancy;
}

type demand = {
  mutable warp_instrs : float;  (** issue slots *)
  mutable dp_slots : float;  (** DFMA-equivalent DP issue slots *)
  mutable shared_slots : float;  (** warp shared-access slots *)
  mutable tex_bytes : float;
  mutable global_bytes : float;
  mutable local_bytes : float;
}
(** Per-CTA-batch demand on each machine resource, from one walk of the
    body with warp masks. Exposed so the performance model
    ([Singe.Perf_model]) can turn the same accounting into cycles. *)

val demand_of : Arch.t -> Isa.program -> demand

val demand_cycles : Arch.t -> demand -> (string * float) list
(** [(resource, cycles)] — SM cycles one CTA-batch of demand occupies on
    each issue pipe / bandwidth path ([demand / rate]; resources with no
    demand report 0). The maximum entry is the throughput-side floor on
    per-batch execution time; {!analyze}'s bounds are the same ratios
    expressed as points/s ceilings. *)

val analyze : Arch.t -> Isa.program -> t
(** Per-SM ceilings from: warp-instruction issue, the DP pipe (counting
    multi-slot special functions and constant-operand penalties), the
    shared-memory pipe, and each global/local bandwidth path, scaled by
    occupancy-resident CTAs and SM count. *)

val pp : Format.formatter -> t -> unit
