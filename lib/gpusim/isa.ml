type fop = Add | Sub | Mul | Fma | Div | Sqrt | Exp | Log | Max | Min | Neg

let fop_arity = function
  | Fma -> 3
  | Add | Sub | Mul | Div | Max | Min -> 2
  | Sqrt | Exp | Log | Neg -> 1

let fop_flops = function
  | Add | Sub | Mul | Max | Min | Neg -> 1
  | Fma -> 2
  | Div -> 8
  | Sqrt -> 8
  | Exp | Log -> 24

let fop_dp_slots = function
  | Add | Sub | Mul | Max | Min | Neg | Fma -> 1.0
  | Div -> 8.0
  | Sqrt -> 8.0
  | Exp | Log -> 17.0

let fop_lat_mult = function
  | Div | Sqrt -> 3
  | Exp | Log -> 5
  | Add | Sub | Mul | Fma | Max | Min | Neg -> 1

type pred = Lane_eq of int | Lane_lt of int

type saddr = {
  s_base : int;
  s_warp_mul : int;
  s_lane_mul : int;
  s_ireg : int option;
  s_ireg_mul : int;
}

let sh base =
  { s_base = base; s_warp_mul = 0; s_lane_mul = 0; s_ireg = None; s_ireg_mul = 0 }

let sh_lane ?(mul = 1) base = { (sh base) with s_lane_mul = mul }

let sh_warp base = { (sh base) with s_warp_mul = 1 }

let sh_ireg ?(lane_mul = 0) ~base ~ireg ~mul () =
  { s_base = base; s_warp_mul = 0; s_lane_mul = lane_mul; s_ireg = Some ireg;
    s_ireg_mul = mul }

type src =
  | Sreg of int
  | Simm of float
  | Sconst of int
  | Sconst_warp of int  (** constant memory at [base + warp_id] *)
  | Sshared of saddr

type field_sel = F_static of int | F_ireg of int

type instr =
  | Arith of { op : fop; dst : int; srcs : src array; pred : pred option }
  | Mov of { dst : int; src : src; pred : pred option }
  | Ld_global of {
      dst : int;
      group : int;
      field : field_sel;
      via_tex : bool;
      pred : pred option;
    }
  | St_global of {
      src : src;
      group : int;
      field : field_sel;
      pred : pred option;
    }
  | Ld_shared of { dst : int; addr : saddr; pred : pred option }
  | St_shared of { src : src; addr : saddr; pred : pred option }
  | Ld_local of { dst : int; slot : int }
  | St_local of { src : int; slot : int }
  | Ld_const_bank of { dst : int; slot : int }
  | Ld_param of { dst_i : int; slot : int }
  | Shfl of { dst : int; src : int; lane : int }
  | Ishfl of { dst_i : int; src_i : int; lane : int }
  | Shfl_rot of { dst : int; src : int; delta : int }
  | Shfl_bfly of { dst : int; src : int; xor_mask : int }
  | Bar_arrive of { bar : int; count : int }
  | Bar_sync of { bar : int; count : int }
  | Bar_cta

type block =
  | Instrs of instr list
  | Seq of block list
  | If_warps of { mask : int; body : block }
  | Switch_warp of block array

type point_map = Coop | Thread_per_point

type group_info = { group_name : string; fields : int }

type program = {
  name : string;
  n_warps : int;
  n_fregs : int;
  n_iregs : int;
  shared_doubles : int;
  local_doubles : int;
  barriers_used : int;
  point_map : point_map;
  prologue : block;
  body : block;
  const_bank : float array array array;
  param_bank : int array array array;
  const_mem : float array;
  groups : group_info array;
  exp_consts_in_registers : bool;
}

let rec iter_instrs block f =
  match block with
  | Instrs l -> List.iter f l
  | Seq bs -> List.iter (fun b -> iter_instrs b f) bs
  | If_warps { body; _ } -> iter_instrs body f
  | Switch_warp bodies -> Array.iter (fun b -> iter_instrs b f) bodies

let static_instr_count block =
  let n = ref 0 in
  iter_instrs block (fun _ -> incr n);
  !n

let static_bytes (arch : Arch.t) instr =
  let slots =
    match instr with
    | Arith { op; _ } -> int_of_float (fop_dp_slots op)
    | Shfl _ | Shfl_rot _ | Shfl_bfly _ ->
        2 (* two 32-bit shuffles reassemble a double *)
    | Mov _ | Ld_global _ | St_global _ | Ld_shared _ | St_shared _
    | Ld_local _ | St_local _ | Ld_const_bank _ | Ld_param _ | Ishfl _
    | Bar_arrive _ | Bar_sync _ | Bar_cta ->
        1
  in
  slots * arch.Arch.instr_bytes

let regs32_per_thread p = (2 * p.n_fregs) + p.n_iregs + 10

let validate p =
  let problems = ref [] in
  (* [where] carries the position of the instruction being checked
     ("body[17]"), so per-instruction diagnostics point at the offending
     site; program-level checks leave it empty. *)
  let where = ref "" in
  let err fmt =
    Printf.ksprintf
      (fun s ->
        problems :=
          (if !where = "" then s else !where ^ ": " ^ s) :: !problems)
      fmt
  in
  let check_freg tag r =
    if r < 0 || r >= p.n_fregs then err "%s: double register %d out of range" tag r
  in
  let check_ireg tag r =
    if r < 0 || r >= p.n_iregs then err "%s: int register %d out of range" tag r
  in
  let check_pred tag = function
    | Some (Lane_eq l | Lane_lt l) ->
        if l < 0 || l >= 32 then err "%s: predicate lane %d out of range" tag l
    | None -> ()
  in
  let check_saddr tag (a : saddr) =
    (* A negative static base is fine when a parameter register supplies
       the rest of the address; the dynamic part is checked at runtime. *)
    if a.s_base < 0 && a.s_ireg = None then
      err "%s: negative shared base %d" tag a.s_base;
    (match a.s_ireg with
    | Some r -> check_ireg tag r
    | None ->
        let max_static =
          a.s_base
          + max 0 (a.s_warp_mul * (p.n_warps - 1))
          + max 0 (a.s_lane_mul * 31)
        in
        if max_static >= p.shared_doubles then
          err "%s: shared address %d exceeds %d doubles" tag max_static
            p.shared_doubles)
  in
  let check_src tag = function
    | Sreg r -> check_freg tag r
    | Simm _ -> ()
    | Sconst c ->
        if c < 0 || c >= Array.length p.const_mem then
          err "%s: constant slot %d out of range" tag c
    | Sconst_warp c ->
        if c < 0 || c + p.n_warps > Array.length p.const_mem then
          err "%s: warp-strided constant base %d out of range" tag c
    | Sshared a -> check_saddr tag a
  in
  let check_field tag = function
    | F_static _ -> ()
    | F_ireg r -> check_ireg tag r
  in
  let check_bar tag b =
    if b < 0 || b >= p.barriers_used then err "%s: barrier %d out of range (%d used)" tag b p.barriers_used
  in
  let check_group tag g =
    if g < 0 || g >= Array.length p.groups then err "%s: group %d out of range" tag g
  in
  let check instr =
    match instr with
    | Arith { op; dst; srcs; pred } ->
        if Array.length srcs <> fop_arity op then err "arith: wrong arity";
        check_freg "arith" dst;
        Array.iter (check_src "arith") srcs;
        check_pred "arith" pred
    | Mov { dst; src; pred } ->
        check_freg "mov" dst;
        check_src "mov" src;
        check_pred "mov" pred
    | Ld_global { dst; group; field; pred; _ } ->
        check_freg "ld_global" dst;
        check_group "ld_global" group;
        check_field "ld_global" field;
        check_pred "ld_global" pred
    | St_global { src; group; field; pred } ->
        check_src "st_global" src;
        check_group "st_global" group;
        check_field "st_global" field;
        check_pred "st_global" pred
    | Ld_shared { dst; addr; pred } ->
        check_freg "ld_shared" dst;
        check_saddr "ld_shared" addr;
        check_pred "ld_shared" pred
    | St_shared { src; addr; pred } ->
        check_src "st_shared" src;
        check_saddr "st_shared" addr;
        check_pred "st_shared" pred
    | Ld_local { dst; slot } ->
        check_freg "ld_local" dst;
        if slot < 0 || slot >= p.local_doubles then err "ld_local: slot %d" slot
    | St_local { src; slot } ->
        check_freg "st_local" src;
        if slot < 0 || slot >= p.local_doubles then err "st_local: slot %d" slot
    | Ld_const_bank { dst; slot } ->
        check_freg "ld_const_bank" dst;
        Array.iteri
          (fun w lanes ->
            Array.iteri
              (fun l bank ->
                if slot < 0 || slot >= Array.length bank then
                  err "ld_const_bank: slot %d out of range for warp %d lane %d"
                    slot w l)
              lanes)
          p.const_bank
    | Ld_param { dst_i; slot } ->
        check_ireg "ld_param" dst_i;
        Array.iter
          (Array.iter (fun bank ->
               if slot < 0 || slot >= Array.length bank then
                 err "ld_param: slot %d out of range" slot))
          p.param_bank
    | Shfl { dst; src; lane } ->
        check_freg "shfl" dst;
        check_freg "shfl" src;
        if lane < 0 || lane >= 32 then
          err "shfl: lane %d outside [0, 32)" lane
    | Ishfl { dst_i; src_i; lane } ->
        check_ireg "ishfl" dst_i;
        check_ireg "ishfl" src_i;
        if lane < 0 || lane >= 32 then
          err "ishfl: lane %d outside [0, 32)" lane
    | Shfl_rot { dst; src; delta } ->
        check_freg "shfl.rot" dst;
        check_freg "shfl.rot" src;
        if delta < 0 || delta >= 32 then
          err "shfl.rot: delta %d outside [0, 32)" delta
    | Shfl_bfly { dst; src; xor_mask } ->
        check_freg "shfl.bfly" dst;
        check_freg "shfl.bfly" src;
        if xor_mask < 0 || xor_mask >= 32 then
          err "shfl.bfly: xor mask %d outside [0, 32)" xor_mask
    | Bar_arrive { bar; count } | Bar_sync { bar; count } ->
        check_bar "bar" bar;
        if count < 1 || count > p.n_warps then err "bar: count %d" count
    | Bar_cta -> ()
  in
  let rec walk_shape b =
    (match b with
    | Switch_warp bodies ->
        if Array.length bodies <> p.n_warps then
          err "switch_warp: %d bodies for %d warps" (Array.length bodies)
            p.n_warps
    | If_warps { mask; _ } -> if mask = 0 then err "if_warps: empty mask"
    | Instrs _ | Seq _ -> ());
    match b with
    | Seq bs -> List.iter walk_shape bs
    | If_warps { body; _ } -> walk_shape body
    | Switch_warp bodies -> Array.iter walk_shape bodies
    | Instrs _ -> ()
  in
  walk_shape p.prologue;
  walk_shape p.body;
  let check_at section =
    let idx = ref 0 in
    fun instr ->
      where := Printf.sprintf "%s[%d]" section !idx;
      incr idx;
      check instr
  in
  iter_instrs p.prologue (check_at "prologue");
  iter_instrs p.body (check_at "body");
  where := "";
  if p.n_warps < 1 || p.n_warps > 32 then err "n_warps %d out of range" p.n_warps;
  if Array.length p.const_bank <> p.n_warps then err "const_bank warp dim";
  if Array.length p.param_bank <> p.n_warps then err "param_bank warp dim";
  match !problems with [] -> Ok () | l -> Error (List.rev l)

let pp_src ppf = function
  | Sreg r -> Format.fprintf ppf "r%d" r
  | Simm f -> Format.fprintf ppf "%g" f
  | Sconst c -> Format.fprintf ppf "c[%d]" c
  | Sconst_warp c -> Format.fprintf ppf "c[%d+warp]" c
  | Sshared a ->
      Format.fprintf ppf "sh[%d+%dw+%dl%s]" a.s_base a.s_warp_mul a.s_lane_mul
        (match a.s_ireg with
        | Some r -> Printf.sprintf "+%d*i%d" a.s_ireg_mul r
        | None -> "")

let pp_pred ppf = function
  | Some (Lane_eq l) -> Format.fprintf ppf " @lane==%d" l
  | Some (Lane_lt l) -> Format.fprintf ppf " @lane<%d" l
  | None -> ()

let fop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Fma -> "fma"
  | Div -> "div"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Max -> "max"
  | Min -> "min"
  | Neg -> "neg"

let pp_field ppf = function
  | F_static f -> Format.fprintf ppf "%d" f
  | F_ireg r -> Format.fprintf ppf "i%d" r

let pp_instr ppf = function
  | Arith { op; dst; srcs; pred } ->
      Format.fprintf ppf "%s r%d <-" (fop_name op) dst;
      Array.iter (fun s -> Format.fprintf ppf " %a" pp_src s) srcs;
      pp_pred ppf pred
  | Mov { dst; src; pred } ->
      Format.fprintf ppf "mov r%d <- %a%a" dst pp_src src pp_pred pred
  | Ld_global { dst; group; field; via_tex; pred } ->
      Format.fprintf ppf "ld.global%s r%d <- g%d[%a]%a"
        (if via_tex then ".tex" else "")
        dst group pp_field field pp_pred pred
  | St_global { src; group; field; pred } ->
      Format.fprintf ppf "st.global g%d[%a] <- %a%a" group pp_field field
        pp_src src pp_pred pred
  | Ld_shared { dst; addr; pred } ->
      Format.fprintf ppf "ld.shared r%d <- %a%a" dst pp_src (Sshared addr)
        pp_pred pred
  | St_shared { src; addr; pred } ->
      Format.fprintf ppf "st.shared %a <- %a%a" pp_src (Sshared addr) pp_src
        src pp_pred pred
  | Ld_local { dst; slot } -> Format.fprintf ppf "ld.local r%d <- l[%d]" dst slot
  | St_local { src; slot } -> Format.fprintf ppf "st.local l[%d] <- r%d" slot src
  | Ld_const_bank { dst; slot } ->
      Format.fprintf ppf "ld.bank r%d <- bank[%d]" dst slot
  | Ld_param { dst_i; slot } ->
      Format.fprintf ppf "ld.param i%d <- params[%d]" dst_i slot
  | Shfl { dst; src; lane } ->
      Format.fprintf ppf "shfl r%d <- r%d @%d" dst src lane
  | Ishfl { dst_i; src_i; lane } ->
      Format.fprintf ppf "ishfl i%d <- i%d @%d" dst_i src_i lane
  | Shfl_rot { dst; src; delta } ->
      Format.fprintf ppf "shfl.rot r%d <- r%d +%d" dst src delta
  | Shfl_bfly { dst; src; xor_mask } ->
      Format.fprintf ppf "shfl.bfly r%d <- r%d ^%d" dst src xor_mask
  | Bar_arrive { bar; count } -> Format.fprintf ppf "bar.arrive %d, %d" bar count
  | Bar_sync { bar; count } -> Format.fprintf ppf "bar.sync %d, %d" bar count
  | Bar_cta -> Format.fprintf ppf "bar.cta"

let rec pp_block ppf = function
  | Instrs l ->
      List.iter (fun i -> Format.fprintf ppf "  %a@." pp_instr i) l
  | Seq bs -> List.iter (pp_block ppf) bs
  | If_warps { mask; body } ->
      Format.fprintf ppf "if warps & 0x%X {@." mask;
      pp_block ppf body;
      Format.fprintf ppf "}@."
  | Switch_warp bodies ->
      Format.fprintf ppf "switch (warp_id) {@.";
      Array.iteri
        (fun w b ->
          Format.fprintf ppf "case %d:@." w;
          pp_block ppf b)
        bodies;
      Format.fprintf ppf "}@."
