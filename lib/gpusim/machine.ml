type launch = {
  program : Isa.program;
  total_points : int;
  ctas : int;
}

type occupancy = {
  resident_ctas : int;
  limited_by : string;
  warps_per_sm : int;
}

let occupancy (arch : Arch.t) (p : Isa.program) =
  let regs32 = Isa.regs32_per_thread p in
  if regs32 > arch.Arch.max_regs_per_thread then
    failwith
      (Printf.sprintf
         "%s: %d registers per thread exceeds the %d limit on %s (the \
          compiler should have spilled)"
         p.Isa.name regs32 arch.Arch.max_regs_per_thread arch.Arch.name);
  let threads_per_cta = p.Isa.n_warps * 32 in
  let by_regs = arch.Arch.regfile_per_sm / max 1 (regs32 * threads_per_cta) in
  let shared_bytes = p.Isa.shared_doubles * 8 in
  let by_shared =
    if shared_bytes = 0 then max_int else arch.Arch.shared_bytes_per_sm / shared_bytes
  in
  let by_warps = arch.Arch.max_warps_per_sm / p.Isa.n_warps in
  let by_bars =
    if p.Isa.barriers_used = 0 then max_int
    else arch.Arch.named_barriers_per_sm / p.Isa.barriers_used
  in
  let limits =
    [
      ("registers", by_regs);
      ("shared memory", by_shared);
      ("warp slots", by_warps);
      ("named barriers", by_bars);
      ("CTA slots", arch.Arch.max_ctas_per_sm);
    ]
  in
  let limited_by, resident =
    List.fold_left
      (fun (ln, lv) (n, v) -> if v < lv then (n, v) else (ln, lv))
      ("CTA slots", arch.Arch.max_ctas_per_sm)
      limits
  in
  if resident < 1 then
    failwith
      (Printf.sprintf "%s does not fit on %s (limited by %s)" p.Isa.name
         arch.Arch.name limited_by);
  {
    resident_ctas = resident;
    limited_by;
    warps_per_sm = resident * p.Isa.n_warps;
  }

let points_per_cta l =
  assert (l.total_points mod l.ctas = 0);
  l.total_points / l.ctas

let batches_per_cta l =
  let per_batch =
    match l.program.Isa.point_map with
    | Isa.Coop -> 32
    | Isa.Thread_per_point -> l.program.Isa.n_warps * 32
  in
  let ppc = points_per_cta l in
  assert (ppc mod per_batch = 0);
  ppc / per_batch

type result = {
  occ : occupancy;
  waves : float;
  sm_cycles : int;
  time_s : float;
  points_per_sec : float;
  gflops : float;
  dram_gbs : float;
  local_gbs : float;
  sim : Sm.result;
  mem : Memstate.t;
  simulated_points : int;
}

let run ?(fill_inputs = fun _ _ -> ()) ?(max_sim_batches = 6) ?(faults = [])
    ?max_cycles ?profile (arch : Arch.t) (l : launch) =
  let occ = occupancy arch l.program in
  let resident = min occ.resident_ctas l.ctas in
  let batches = batches_per_cta l in
  let per_batch =
    match l.program.Isa.point_map with
    | Isa.Coop -> 32
    | Isa.Thread_per_point -> l.program.Isa.n_warps * 32
  in
  (* Long streaming launches are extrapolated from a short simulation:
     cycles grow linearly in the batch count (the body repeats), so two
     runs pin the prologue and per-batch cost exactly. *)
  let sim_batches = min batches max_sim_batches in
  let simulated_points = resident * per_batch * sim_batches in
  let mem =
    Memstate.create l.program ~n_points:simulated_points ~resident_ctas:resident
  in
  fill_inputs mem simulated_points;
  (* The 1-batch pin run below reuses a prefix of the inputs just filled
     instead of calling [fill_inputs] again: simulated cycles and
     counters are independent of float memory contents (addresses and
     stall times only ever derive from static program data), and the pin
     run's functional outputs are discarded. Snapshot the prefix now,
     before the main simulation overwrites output fields. *)
  let pin_mem =
    if batches <= max_sim_batches then None
    else begin
      let m =
        Memstate.create l.program ~n_points:(resident * per_batch)
          ~resident_ctas:resident
      in
      Memstate.copy_global_prefix ~src:mem ~dst:m;
      Some m
    end
  in
  let trace =
    Fault.apply ~named_barriers:arch.Arch.named_barriers_per_sm faults
      (Trace.flatten arch l.program)
  in
  let job =
    {
      Sm.arch;
      program = l.program;
      trace;
      mem;
      resident_ctas = resident;
      batches = sim_batches;
      cta_point_base = Array.init resident (fun c -> c * per_batch * sim_batches);
    }
  in
  (* The profiler rides only the main simulation; the 1-batch pin run
     below exists purely to extrapolate cycle counts. *)
  let sim = Sm.run ?max_cycles ?profile job in
  let cycles_full =
    if batches = sim_batches then float_of_int sim.Sm.cycles
    else begin
      let mem1 = Option.get pin_mem in
      let sim1 =
        Sm.run ?max_cycles
          {
            Sm.arch;
            program = l.program;
            trace;
            mem = mem1;
            resident_ctas = resident;
            batches = 1;
            cta_point_base = Array.init resident (fun c -> c * per_batch);
          }
      in
      let body =
        float_of_int (sim.Sm.cycles - sim1.Sm.cycles)
        /. float_of_int (sim_batches - 1)
      in
      let prologue = float_of_int sim1.Sm.cycles -. body in
      prologue +. (body *. float_of_int batches)
    end
  in
  let waves =
    float_of_int l.ctas /. float_of_int (resident * arch.Arch.n_sms)
  in
  let waves = Float.max waves 1.0 in
  let total_cycles = cycles_full *. waves in
  let time_s = total_cycles /. (arch.Arch.clock_mhz *. 1e6) in
  let points_per_sec = float_of_int l.total_points /. time_s in
  (* The simulated SM-round covers [resident * ppc] points; extrapolate
     totals by the point ratio. *)
  let scale = float_of_int l.total_points /. float_of_int simulated_points in
  let gflops =
    float_of_int sim.Sm.counters.Sm.flops *. scale /. time_s /. 1e9
  in
  let bytes path = float_of_int path *. scale /. time_s /. 1e9 in
  let dram_gbs =
    bytes
      (sim.Sm.counters.Sm.tex_bytes + sim.Sm.counters.Sm.global_bytes
     + sim.Sm.counters.Sm.local_bytes)
  in
  let local_gbs = bytes sim.Sm.counters.Sm.local_bytes in
  {
    occ;
    waves;
    sm_cycles = sim.Sm.cycles;
    time_s;
    points_per_sec;
    gflops;
    dram_gbs;
    local_gbs;
    sim;
    mem;
    simulated_points;
  }
