(* Thin facade over the full-chip simulation layer. The launch,
   occupancy and result types are re-exported with equations so
   existing call sites keep working; the run core lives in [Chip]. *)

type launch = Chip.launch = {
  program : Isa.program;
  total_points : int;
  ctas : int;
}

type occupancy = Chip.occupancy = {
  resident_ctas : int;
  limited_by : string;
  warps_per_sm : int;
}

let occupancy = Chip.occupancy
let points_per_cta = Chip.points_per_cta
let batches_per_cta = Chip.batches_per_cta

type result = Chip.result = {
  occ : occupancy;
  waves : float;
  sm_cycles : int;
  time_s : float;
  points_per_sec : float;
  gflops : float;
  dram_gbs : float;
  local_gbs : float;
  sim : Sm.result;
  tail_sim : Sm.result option;
  mem : Memstate.t;
  simulated_points : int;
  chip : Chip.schedule;
}

let run ?fill_inputs ?max_sim_batches ?faults ?max_cycles ?profile ?n_sms
    ?skew arch l =
  Chip.run ?fill_inputs ?max_sim_batches ?faults ?max_cycles ?profile ?n_sms
    ?skew arch l
